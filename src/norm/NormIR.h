//===--- NormIR.h - Normalized assignment forms ----------------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The normalized program representation consumed by the pointer analysis:
/// the paper's five assignment forms (Section 2)
///
///   1. s = (ts) &t.b          AddrOf
///   2. s = (ts) &((*p).a)     AddrOfDeref
///   3. s = (ts) t.b           Copy
///   4. s = (ts) *q            Load
///   5. *p = (tp) t            Store
///
/// plus two forms the paper describes in prose:
///
///   6. s = p (+) q ...        PtrArith   (Section 4.2.1, Assumption 1)
///   7. calls                  Call       (context-insensitive binding)
///
/// Left-hand sides (and every operand of forms 2 and 4-7) are "top level"
/// objects; field accesses appear only as the explicit paths of forms 1-3.
/// The normalizer introduces temporaries to reach this shape, exactly as
/// the paper assumes.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_NORM_NORMIR_H
#define SPA_NORM_NORMIR_H

#include "cfg/Cfg.h"
#include "ctypes/TypeTable.h"
#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace spa {

struct ObjectTag {};
/// Identifier of an abstract memory object.
using ObjectId = Id<ObjectTag>;

struct NormFuncTag {};
/// Identifier of a function in the normalized program.
using FuncId = Id<NormFuncTag>;

/// What kind of memory an object abstracts.
enum class ObjectKind : uint8_t {
  Global,   ///< file-scope variable
  Local,    ///< block-scope variable (including statics)
  Param,    ///< function parameter
  Temp,     ///< normalizer-introduced temporary
  Heap,     ///< allocation-site pseudo-variable ("malloc_i")
  Function, ///< a function used as a value
  StringLit,///< a string literal object
  Return,   ///< a function's return-value pseudo-variable
  Varargs,  ///< a variadic function's "..." pseudo-variable
  Constant, ///< the shared pseudo-object for literal values: never holds
            ///< points-to facts and never participates in resolve
  Unknown,  ///< the special "possibly corrupted pointer" location used by
            ///< SolverOptions::TrackUnknown (paper, Section 4.2.1)
};

/// One abstract memory object ("top level" variable in the paper's sense).
struct NormObject {
  ObjectKind Kind = ObjectKind::Temp;
  Symbol Name;       ///< display name ("x", "malloc@12", "$t3", ...)
  TypeId Ty;         ///< declared type of the whole object
  SourceLoc Loc;
  FuncId Owner;      ///< owning function; invalid for globals/heap/strings
  FuncId AsFunction; ///< for Kind==Function: which function this object is
};

/// The operation of one normalized statement.
enum class NormOp : uint8_t {
  AddrOf,      ///< Dst = (LhsTy) &Src.Path
  AddrOfDeref, ///< Dst = &((*Src).Path); DeclPointeeTy = declared pointee
  Copy,        ///< Dst = (LhsTy) Src.Path
  Load,        ///< Dst = (LhsTy) *Src
  Store,       ///< *Dst = (LhsTy) Src; LhsTy = declared pointee of Dst
  PtrArith,    ///< Dst = ArithSrcs[0] (+) ArithSrcs[1] ...
  Call,        ///< see Callee/Args/RetDst
};

/// One normalized statement.
struct NormStmt {
  NormOp Op = NormOp::Copy;
  SourceLoc Loc;
  FuncId Owner; ///< invalid for global-initializer statements

  ObjectId Dst; ///< LHS object (for Store: the pointer being stored through)
  ObjectId Src; ///< RHS base object (AddrOf/Copy), or the pointer (AddrOfDeref/Load), or the stored value (Store)
  FieldPath Path; ///< beta (AddrOf/Copy) or alpha (AddrOfDeref)

  /// The declared type of the assignment's left-hand side: the paper's
  /// third argument to resolve (Complication 4). For Store this is the
  /// declared pointee type of the pointer.
  TypeId LhsTy;
  /// AddrOfDeref: the declared pointee type of the dereferenced pointer
  /// (the first argument of lookup).
  TypeId DeclPointeeTy;

  std::vector<ObjectId> ArithSrcs; ///< PtrArith operands

  /// Call payload.
  FuncId DirectCallee;       ///< valid for direct calls
  ObjectId IndirectCallee;   ///< valid for calls through a pointer
  std::vector<ObjectId> Args;
  ObjectId RetDst;           ///< temp receiving the return value

  /// Index into NormProgram::DerefSites for AddrOfDeref/Load/Store and
  /// indirect calls; -1 otherwise.
  int32_t DerefSite = -1;
};

/// One static pointer-dereference site (the unit of the paper's Figure 4
/// metric: points-to set size per dereferenced pointer instance).
struct DerefSite {
  SourceLoc Loc;
  ObjectId Ptr;          ///< the dereferenced pointer object
  TypeId DeclPointeeTy;  ///< its declared pointee type
  bool IsCall = false;   ///< an indirect call rather than a data access
};

/// One function in the normalized program.
struct NormFunction {
  Symbol Name;
  TypeId Ty; ///< function type
  bool IsDefined = false;
  bool IsVariadic = false;
  std::vector<ObjectId> Params;
  ObjectId RetObj;     ///< invalid for void functions
  ObjectId VarargsObj; ///< valid only for variadic functions
  ObjectId FnObj;      ///< the function-as-object (target of &f)
};

/// A whole normalized program: the bag of statements the flow-insensitive
/// analysis closes over, plus the object and function tables.
class NormProgram {
public:
  NormProgram(TypeTable &Types, StringInterner &Strings)
      : Types(Types), Strings(Strings) {}

  TypeTable &Types;
  StringInterner &Strings;

  std::vector<NormObject> Objects;
  std::vector<NormFunction> Funcs;
  std::vector<NormStmt> Stmts;
  std::vector<DerefSite> DerefSites;
  /// Intraprocedural CFGs, one per defined function, built alongside the
  /// statement stream (blocks index into Stmts). The flow-insensitive
  /// solve ignores this entirely; the CFG flow pass (--flow=cfg) and the
  /// CFG verifier consume it.
  ProgramCfg Cfg;

  /// Creates an object and returns its id.
  ObjectId makeObject(ObjectKind Kind, Symbol Name, TypeId Ty, SourceLoc Loc,
                      FuncId Owner = FuncId()) {
    NormObject Obj;
    Obj.Kind = Kind;
    Obj.Name = Name;
    Obj.Ty = Ty;
    Obj.Loc = Loc;
    Obj.Owner = Owner;
    Objects.push_back(std::move(Obj));
    return ObjectId(static_cast<uint32_t>(Objects.size() - 1));
  }

  const NormObject &object(ObjectId Id) const { return Objects[Id.index()]; }
  const NormFunction &func(FuncId Id) const { return Funcs[Id.index()]; }

  /// Finds a normalized function by name; invalid id if absent.
  FuncId findFunc(Symbol Name) const {
    for (uint32_t I = 0; I < Funcs.size(); ++I)
      if (Funcs[I].Name == Name)
        return FuncId(I);
    return FuncId();
  }

  /// Number of statements of each kind, for reporting.
  size_t countOps(NormOp Op) const {
    size_t N = 0;
    for (const NormStmt &S : Stmts)
      if (S.Op == Op)
        ++N;
    return N;
  }

  /// Statement indices of NormProgram::Stmts grouped by owning function,
  /// with the emission (source) order preserved inside each list. The
  /// normalizer emits statements in the order the source executes them
  /// within one straight-line region, which is what the flow passes
  /// (src/flow/) walk.
  struct StmtOrder {
    /// Per-function statement indices, indexed by FuncId.
    std::vector<std::vector<uint32_t>> ByFunc;
    /// Global-initializer statements (invalid Owner), program order.
    std::vector<uint32_t> Globals;
  };
  StmtOrder stmtOrder() const;

  /// Renders an object's display name ("f::x" for locals).
  std::string objectName(ObjectId Id) const;

  /// Renders a statement for debugging and golden tests.
  std::string stmtToString(const NormStmt &S) const;
};

} // namespace spa

#endif // SPA_NORM_NORMIR_H
