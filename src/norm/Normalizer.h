//===--- Normalizer.h - AST to normalized assignments ----------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a parsed translation unit to the paper's normalized assignment
/// forms (see NormIR.h), introducing temporaries so that every statement
/// operand is a top-level object:
///
///   s.s1 = &x;   =>   tmp1 = &s.s1;  tmp2 = &x;  *tmp1 = tmp2;
///
/// Heap allocation sites become allocation-site pseudo-variables; when an
/// allocation call appears under a pointer cast or a pointer-typed
/// assignment, the pseudo-variable takes the pointed-to type, otherwise it
/// is an untyped byte blob. Every pointer dereference emitted registers a
/// DerefSite (the unit of the paper's precision metric).
///
/// Conservatism carried over from the paper (Assumption 1): all arithmetic
/// flows through PtrArith statements, including arithmetic on integers
/// (which may hold casted pointers); comparisons and logical operators
/// yield pointer-free values.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_NORM_NORMALIZER_H
#define SPA_NORM_NORMALIZER_H

#include "cfront/AST.h"
#include "norm/NormIR.h"
#include "support/Diagnostics.h"

#include <unordered_map>

namespace spa {

/// Translates one TranslationUnit into a NormProgram.
class Normalizer {
public:
  Normalizer(const TranslationUnit &TU, NormProgram &Prog,
             DiagnosticEngine &Diags);

  /// Runs the lowering. The program is usable even if diagnostics were
  /// reported (unsupported constructs degrade to conservative statements).
  void run();

private:
  /// A resolved reference to a storage location.
  struct Access {
    enum AccessKind {
      Direct, ///< Base.Path (Base is a top-level object)
      Indirect, ///< (*Base).Path (Base is a pointer-valued object)
    } Kind = Direct;
    ObjectId Base;
    FieldPath Path;
    TypeId DeclPointeeTy; ///< Indirect: declared pointee type of Base
    TypeId Ty;            ///< type of the designated location
  };

  /// \name Object management.
  /// @{
  ObjectId objectForVar(const VarDecl *Var);
  ObjectId makeTemp(TypeId Ty, SourceLoc Loc);
  ObjectId stringObject(const Expr &Lit);
  ObjectId heapObject(TypeId ElemTy, SourceLoc Loc);
  FuncId funcIdFor(const FunctionDecl *Fn);
  /// @}

  /// \name Statement emission.
  /// @{
  NormStmt &emit(NormOp Op, SourceLoc Loc);
  void emitAddrOf(ObjectId Dst, ObjectId Src, FieldPath Path, TypeId LhsTy,
                  SourceLoc Loc);
  ObjectId emitAddrOfDeref(ObjectId Ptr, FieldPath Alpha, TypeId DeclPointee,
                           TypeId ResultTy, SourceLoc Loc);
  void emitCopy(ObjectId Dst, ObjectId Src, FieldPath Path, TypeId LhsTy,
                SourceLoc Loc);
  void emitLoad(ObjectId Dst, ObjectId Ptr, TypeId LhsTy, TypeId DeclPointee,
                SourceLoc Loc);
  void emitStore(ObjectId Ptr, ObjectId Value, TypeId LhsTy, SourceLoc Loc);
  ObjectId emitPtrArith(std::vector<ObjectId> Srcs, TypeId Ty, SourceLoc Loc);
  int32_t makeDerefSite(ObjectId Ptr, TypeId DeclPointee, bool IsCall,
                        SourceLoc Loc);
  /// @}

  /// \name Expression lowering.
  /// @{
  Access genAccess(const Expr &E);
  /// Materializes the value of \p E into a top-level object. \p TypeHint
  /// is the type the context converts the value to (assignment LHS type or
  /// cast type); it also types heap pseudo-variables. Returns an invalid
  /// id only for void values.
  ObjectId genRValue(const Expr &E, TypeId TypeHint = TypeId());
  /// Loads/copies out of \p A into a fresh temp of type \p ResultTy.
  ObjectId materializeAccess(const Access &A, TypeId ResultTy, SourceLoc Loc);
  void genAssignInto(const Access &A, ObjectId Value, SourceLoc Loc);
  ObjectId genAssignExpr(const Expr &E);
  ObjectId genCall(const Expr &E, TypeId TypeHint);
  /// Evaluates \p E for its side effects, discarding the value.
  void genDiscard(const Expr &E);
  /// @}

  /// \name Declarations and statements.
  /// @{
  void declareFunctions();
  void normalizeFunction(const FunctionDecl &Fn);
  void normalizeStmt(const Stmt &S);
  void normalizeVarInit(const VarDecl *Var);
  /// Brace-initializer cursor: initializes (Base,Path):Ty from List
  /// starting at element \p Cursor, consuming elements as C's flat
  /// initialization rules do (arrays collapse to their representative
  /// element).
  void initFromList(ObjectId Base, FieldPath &Path, TypeId Ty,
                    const std::vector<ExprPtr> &Elems, size_t &Cursor,
                    SourceLoc Loc);
  void initScalar(ObjectId Base, const FieldPath &Path, TypeId Ty,
                  const Expr &Init);
  /// @}

  /// Returns true if \p Fn is an allocation function (malloc family).
  bool isAllocator(const FunctionDecl *Fn) const;

  const TranslationUnit &TU;
  NormProgram &Prog;
  DiagnosticEngine &Diags;
  TypeTable &Types;
  StringInterner &Strings;

  std::unordered_map<const VarDecl *, ObjectId> VarObjects;
  std::unordered_map<const FunctionDecl *, FuncId> FuncIds;
  FuncId CurFunc;
  ObjectId ConstObj; ///< shared pointer-free object for literals
  unsigned TempCounter = 0;
  /// Builds the intraprocedural CFG (NormProgram::Cfg) alongside the
  /// statement stream; normalizeStmt announces each control construct.
  CfgBuilder Cfg{Prog.Cfg};
};

} // namespace spa

#endif // SPA_NORM_NORMALIZER_H
