//===--- Normalizer.cpp ---------------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "norm/Normalizer.h"

using namespace spa;

Normalizer::Normalizer(const TranslationUnit &TU, NormProgram &Prog,
                       DiagnosticEngine &Diags)
    : TU(TU), Prog(Prog), Diags(Diags), Types(Prog.Types),
      Strings(Prog.Strings) {
  ConstObj = Prog.makeObject(ObjectKind::Constant, Strings.intern("$const"),
                             Types.intType(), SourceLoc());
}

//===----------------------------------------------------------------------===//
// Objects
//===----------------------------------------------------------------------===//

ObjectId Normalizer::objectForVar(const VarDecl *Var) {
  auto It = VarObjects.find(Var);
  if (It != VarObjects.end())
    return It->second;
  ObjectKind Kind = Var->IsGlobal
                        ? ObjectKind::Global
                        : (Var->IsParam ? ObjectKind::Param
                                        : ObjectKind::Local);
  FuncId Owner = Var->IsGlobal ? FuncId() : CurFunc;
  if (Var->Owner)
    Owner = funcIdFor(Var->Owner);
  ObjectId Obj = Prog.makeObject(Kind, Var->Name, Var->Ty, Var->Loc, Owner);
  VarObjects.emplace(Var, Obj);
  return Obj;
}

ObjectId Normalizer::makeTemp(TypeId Ty, SourceLoc Loc) {
  Symbol Name = Strings.intern("$t" + std::to_string(TempCounter++));
  return Prog.makeObject(ObjectKind::Temp, Name, Ty, Loc, CurFunc);
}

ObjectId Normalizer::stringObject(const Expr &Lit) {
  Symbol Name = Strings.intern("$str@" + std::to_string(Lit.Loc.Line) + ":" +
                               std::to_string(Lit.Loc.Column));
  return Prog.makeObject(ObjectKind::StringLit, Name, Lit.Ty, Lit.Loc);
}

ObjectId Normalizer::heapObject(TypeId ElemTy, SourceLoc Loc) {
  Symbol Name = Strings.intern("malloc@" + std::to_string(Loc.Line) + ":" +
                               std::to_string(Loc.Column));
  return Prog.makeObject(ObjectKind::Heap, Name, ElemTy, Loc);
}

FuncId Normalizer::funcIdFor(const FunctionDecl *Fn) {
  auto It = FuncIds.find(Fn);
  assert(It != FuncIds.end() && "function not registered");
  return It->second;
}

//===----------------------------------------------------------------------===//
// Emission helpers
//===----------------------------------------------------------------------===//

NormStmt &Normalizer::emit(NormOp Op, SourceLoc Loc) {
  NormStmt Stmt;
  Stmt.Op = Op;
  Stmt.Loc = Loc;
  Stmt.Owner = CurFunc;
  Prog.Stmts.push_back(std::move(Stmt));
  Cfg.noteStmt(static_cast<uint32_t>(Prog.Stmts.size() - 1), Loc);
  return Prog.Stmts.back();
}

int32_t Normalizer::makeDerefSite(ObjectId Ptr, TypeId DeclPointee,
                                  bool IsCall, SourceLoc Loc) {
  DerefSite Site;
  Site.Loc = Loc;
  Site.Ptr = Ptr;
  Site.DeclPointeeTy = DeclPointee;
  Site.IsCall = IsCall;
  Prog.DerefSites.push_back(Site);
  return static_cast<int32_t>(Prog.DerefSites.size() - 1);
}

void Normalizer::emitAddrOf(ObjectId Dst, ObjectId Src, FieldPath Path,
                            TypeId LhsTy, SourceLoc Loc) {
  NormStmt &S = emit(NormOp::AddrOf, Loc);
  S.Dst = Dst;
  S.Src = Src;
  S.Path = std::move(Path);
  S.LhsTy = LhsTy;
}

ObjectId Normalizer::emitAddrOfDeref(ObjectId Ptr, FieldPath Alpha,
                                     TypeId DeclPointee, TypeId ResultTy,
                                     SourceLoc Loc) {
  ObjectId Dst = makeTemp(ResultTy, Loc);
  NormStmt &S = emit(NormOp::AddrOfDeref, Loc);
  S.Dst = Dst;
  S.Src = Ptr;
  S.Path = std::move(Alpha);
  S.LhsTy = ResultTy;
  S.DeclPointeeTy = DeclPointee;
  S.DerefSite = makeDerefSite(Ptr, DeclPointee, /*IsCall=*/false, Loc);
  return Dst;
}

void Normalizer::emitCopy(ObjectId Dst, ObjectId Src, FieldPath Path,
                          TypeId LhsTy, SourceLoc Loc) {
  NormStmt &S = emit(NormOp::Copy, Loc);
  S.Dst = Dst;
  S.Src = Src;
  S.Path = std::move(Path);
  S.LhsTy = LhsTy;
}

void Normalizer::emitLoad(ObjectId Dst, ObjectId Ptr, TypeId LhsTy,
                          TypeId DeclPointee, SourceLoc Loc) {
  NormStmt &S = emit(NormOp::Load, Loc);
  S.Dst = Dst;
  S.Src = Ptr;
  S.LhsTy = LhsTy;
  S.DeclPointeeTy = DeclPointee;
  S.DerefSite = makeDerefSite(Ptr, DeclPointee, /*IsCall=*/false, Loc);
}

void Normalizer::emitStore(ObjectId Ptr, ObjectId Value, TypeId LhsTy,
                           SourceLoc Loc) {
  NormStmt &S = emit(NormOp::Store, Loc);
  S.Dst = Ptr;
  S.Src = Value;
  S.LhsTy = LhsTy;
  S.DeclPointeeTy = LhsTy;
  S.DerefSite = makeDerefSite(Ptr, LhsTy, /*IsCall=*/false, Loc);
}

ObjectId Normalizer::emitPtrArith(std::vector<ObjectId> Srcs, TypeId Ty,
                                  SourceLoc Loc) {
  ObjectId Dst = makeTemp(Ty, Loc);
  std::erase(Srcs, ConstObj); // constants contribute no addresses
  if (Srcs.empty())
    return Dst;
  NormStmt &S = emit(NormOp::PtrArith, Loc);
  S.Dst = Dst;
  S.ArithSrcs = std::move(Srcs);
  S.LhsTy = Ty;
  return Dst;
}

//===----------------------------------------------------------------------===//
// Accesses
//===----------------------------------------------------------------------===//

Normalizer::Access Normalizer::genAccess(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::DeclRef: {
    Access A;
    A.Kind = Access::Direct;
    A.Base = objectForVar(E.Var);
    A.Ty = E.Ty;
    return A;
  }
  case ExprKind::StringLit: {
    Access A;
    A.Kind = Access::Direct;
    A.Base = stringObject(E);
    A.Ty = E.Ty;
    return A;
  }
  case ExprKind::Member: {
    if (E.IsArrow) {
      ObjectId Ptr = genRValue(*E.Lhs);
      Access A;
      A.Kind = Access::Indirect;
      A.Base = Ptr;
      A.Path.push_back(E.MemberIndex);
      TypeId PtrTy = Types.unqualified(E.Lhs->Ty);
      if (Types.isArray(PtrTy))
        PtrTy = Types.getPointer(Types.element(PtrTy));
      A.DeclPointeeTy = Types.isPointer(PtrTy) ? Types.pointee(PtrTy)
                                               : Types.intType();
      A.Ty = E.Ty;
      return A;
    }
    Access A = genAccess(*E.Lhs);
    A.Path.push_back(E.MemberIndex);
    A.Ty = E.Ty;
    return A;
  }
  case ExprKind::Index: {
    TypeId BaseTy = Types.unqualified(E.Lhs->Ty);
    if (Types.isArray(BaseTy)) {
      // Indexing an array lvalue stays within the array's single
      // representative element: same access path.
      Access A = genAccess(*E.Lhs);
      genDiscard(*E.Rhs);
      A.Ty = E.Ty;
      return A;
    }
    // p[i] == *(p + i): pointer arithmetic, then an indirect access.
    ObjectId Ptr = genRValue(*E.Lhs);
    ObjectId Idx = genRValue(*E.Rhs);
    ObjectId Moved = emitPtrArith({Ptr, Idx}, Types.unqualified(E.Lhs->Ty),
                                  E.Loc);
    Access A;
    A.Kind = Access::Indirect;
    A.Base = Moved;
    A.DeclPointeeTy = E.Ty;
    A.Ty = E.Ty;
    return A;
  }
  case ExprKind::Unary:
    if (E.UOp == UnaryOp::Deref) {
      ObjectId Ptr = genRValue(*E.Lhs);
      Access A;
      A.Kind = Access::Indirect;
      A.Base = Ptr;
      TypeId PtrTy = Types.unqualified(E.Lhs->Ty);
      if (Types.isArray(PtrTy))
        PtrTy = Types.getPointer(Types.element(PtrTy));
      A.DeclPointeeTy = Types.isPointer(PtrTy) ? Types.pointee(PtrTy)
                                               : Types.intType();
      A.Ty = E.Ty;
      return A;
    }
    break;
  default:
    break;
  }
  // Not an lvalue form: materialize the value and treat the temp as the
  // location (e.g. taking a member of a returned struct).
  Access A;
  A.Kind = Access::Direct;
  ObjectId V = genRValue(E);
  A.Base = V.isValid() ? V : ConstObj;
  A.Ty = E.Ty;
  return A;
}

ObjectId Normalizer::materializeAccess(const Access &A, TypeId ResultTy,
                                       SourceLoc Loc) {
  if (A.Kind == Access::Direct && A.Base == ConstObj)
    return ConstObj; // constant pseudo-locations never hold facts
  TypeId Unqual = Types.unqualified(A.Ty);

  // Array-typed accesses decay to a pointer to the (representative)
  // element; function-typed accesses decay to a function pointer.
  bool Decays = Types.isArray(Unqual) || Types.isFunction(Unqual);
  if (Decays) {
    TypeId PtrTy = Types.isArray(Unqual)
                       ? Types.getPointer(Types.element(Unqual))
                       : Types.getPointer(Unqual);
    if (A.Kind == Access::Direct) {
      ObjectId Tmp = makeTemp(PtrTy, Loc);
      emitAddrOf(Tmp, A.Base, A.Path, PtrTy, Loc);
      return Tmp;
    }
    if (A.Path.empty()) {
      // *(p) of array/function type: the decayed value is p itself.
      ObjectId Tmp = makeTemp(PtrTy, Loc);
      emitCopy(Tmp, A.Base, {}, PtrTy, Loc);
      return Tmp;
    }
    return emitAddrOfDeref(A.Base, A.Path, A.DeclPointeeTy, PtrTy, Loc);
  }

  if (A.Kind == Access::Direct) {
    if (A.Path.empty() && ResultTy == Types.unqualified(
                              Prog.object(A.Base).Ty))
      return A.Base; // already a top-level object of the right type
    ObjectId Tmp = makeTemp(ResultTy, Loc);
    emitCopy(Tmp, A.Base, A.Path, ResultTy, Loc);
    return Tmp;
  }

  ObjectId Ptr = A.Base;
  if (!A.Path.empty())
    Ptr = emitAddrOfDeref(A.Base, A.Path, A.DeclPointeeTy,
                          Types.getPointer(A.Ty), Loc);
  ObjectId Tmp = makeTemp(ResultTy, Loc);
  emitLoad(Tmp, Ptr, ResultTy, A.Path.empty() ? A.DeclPointeeTy : A.Ty, Loc);
  return Tmp;
}

void Normalizer::genAssignInto(const Access &A, ObjectId Value,
                               SourceLoc Loc) {
  if (!Value.isValid() || Value == ConstObj) {
    // A constant (e.g. a NULL assignment) adds no points-to facts: emit no
    // statement, but an indirect store still dereferences the pointer, so
    // the site is recorded against it (with its declared pointee type).
    if (A.Kind == Access::Indirect)
      makeDerefSite(A.Base, A.DeclPointeeTy, /*IsCall=*/false, Loc);
    return;
  }
  if (A.Kind == Access::Direct) {
    if (A.Path.empty()) {
      emitCopy(A.Base, Value, {}, A.Ty, Loc);
      return;
    }
    // t.path = v   =>   tmp = &t.path; *tmp = v;
    ObjectId Addr = makeTemp(Types.getPointer(A.Ty), Loc);
    emitAddrOf(Addr, A.Base, A.Path, Types.getPointer(A.Ty), Loc);
    emitStore(Addr, Value, A.Ty, Loc);
    return;
  }
  ObjectId Ptr = A.Base;
  TypeId StoredTy = A.Path.empty() ? A.DeclPointeeTy : A.Ty;
  if (!A.Path.empty())
    Ptr = emitAddrOfDeref(A.Base, A.Path, A.DeclPointeeTy,
                          Types.getPointer(A.Ty), Loc);
  emitStore(Ptr, Value, StoredTy, Loc);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

void Normalizer::genDiscard(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLit:
  case ExprKind::FloatLit:
  case ExprKind::EnumRef:
  case ExprKind::DeclRef:
  case ExprKind::FuncRef:
  case ExprKind::StringLit:
  case ExprKind::SizeofType:
    return; // no side effects
  case ExprKind::Comma:
    genDiscard(*E.Lhs);
    genDiscard(*E.Rhs);
    return;
  default:
    (void)genRValue(E);
    return;
  }
}

bool Normalizer::isAllocator(const FunctionDecl *Fn) const {
  if (Fn->isDefined())
    return false; // a locally defined malloc() is just a function
  std::string_view Name = Strings.text(Fn->Name);
  return Name == "malloc" || Name == "calloc" || Name == "realloc" ||
         Name == "valloc" || Name == "xmalloc" || Name == "xcalloc" ||
         Name == "xrealloc" || Name == "strdup" || Name == "strndup";
}

ObjectId Normalizer::genRValue(const Expr &E, TypeId TypeHint) {
  switch (E.Kind) {
  case ExprKind::IntLit:
  case ExprKind::FloatLit:
  case ExprKind::EnumRef:
  case ExprKind::SizeofType:
    return ConstObj;

  case ExprKind::StringLit: {
    ObjectId Str = stringObject(E);
    TypeId PtrTy = Types.getPointer(Types.charType());
    ObjectId Tmp = makeTemp(PtrTy, E.Loc);
    emitAddrOf(Tmp, Str, {}, PtrTy, E.Loc);
    return Tmp;
  }

  case ExprKind::FuncRef: {
    const NormFunction &Fn = Prog.func(funcIdFor(E.Fn));
    TypeId PtrTy = Types.getPointer(E.Ty);
    ObjectId Tmp = makeTemp(PtrTy, E.Loc);
    emitAddrOf(Tmp, Fn.FnObj, {}, PtrTy, E.Loc);
    return Tmp;
  }

  case ExprKind::DeclRef:
  case ExprKind::Member:
  case ExprKind::Index: {
    Access A = genAccess(E);
    return materializeAccess(A, E.Ty, E.Loc);
  }

  case ExprKind::Unary:
    switch (E.UOp) {
    case UnaryOp::Deref: {
      Access A = genAccess(E);
      return materializeAccess(A, E.Ty, E.Loc);
    }
    case UnaryOp::AddrOf: {
      const Expr &Operand = *E.Lhs;
      // &f for a function: the same as the function designator itself.
      if (Operand.Kind == ExprKind::FuncRef)
        return genRValue(Operand);
      Access A = genAccess(Operand);
      if (A.Kind == Access::Direct) {
        ObjectId Tmp = makeTemp(E.Ty, E.Loc);
        emitAddrOf(Tmp, A.Base, A.Path, E.Ty, E.Loc);
        return Tmp;
      }
      if (A.Path.empty()) {
        // &*p is just p's value.
        ObjectId Tmp = makeTemp(E.Ty, E.Loc);
        emitCopy(Tmp, A.Base, {}, E.Ty, E.Loc);
        return Tmp;
      }
      return emitAddrOfDeref(A.Base, A.Path, A.DeclPointeeTy, E.Ty, E.Loc);
    }
    case UnaryOp::Plus:
      return genRValue(*E.Lhs);
    case UnaryOp::Minus:
    case UnaryOp::BitNot: {
      ObjectId V = genRValue(*E.Lhs);
      return emitPtrArith({V.isValid() ? V : ConstObj}, E.Ty, E.Loc);
    }
    case UnaryOp::Not:
      genDiscard(*E.Lhs);
      return ConstObj;
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec: {
      Access A = genAccess(*E.Lhs);
      ObjectId Old = materializeAccess(A, E.Ty, E.Loc);
      ObjectId Moved = emitPtrArith({Old}, E.Ty, E.Loc);
      genAssignInto(A, Moved, E.Loc);
      return Moved;
    }
    }
    return ConstObj;

  case ExprKind::Binary:
    switch (E.BOp) {
    case BinaryOp::LogAnd:
    case BinaryOp::LogOr:
    case BinaryOp::Lt:
    case BinaryOp::Gt:
    case BinaryOp::Le:
    case BinaryOp::Ge:
    case BinaryOp::Eq:
    case BinaryOp::Ne:
      genDiscard(*E.Lhs);
      genDiscard(*E.Rhs);
      return ConstObj;
    default: {
      // Assumption 1: the result of arithmetic may still carry any address
      // reachable from either operand (pointer moved within its object,
      // integer holding a casted pointer, ...).
      ObjectId A = genRValue(*E.Lhs);
      ObjectId B = genRValue(*E.Rhs);
      std::vector<ObjectId> Srcs;
      if (A.isValid())
        Srcs.push_back(A);
      if (B.isValid())
        Srcs.push_back(B);
      return emitPtrArith(std::move(Srcs), E.Ty, E.Loc);
    }
    }

  case ExprKind::Assign:
    return genAssignExpr(E);

  case ExprKind::Conditional: {
    genDiscard(*E.Lhs); // condition
    ObjectId ThenV = genRValue(*E.Rhs);
    ObjectId ElseV = genRValue(*E.Cond);
    ObjectId Tmp = makeTemp(E.Ty, E.Loc);
    if (ThenV.isValid() && ThenV != ConstObj)
      emitCopy(Tmp, ThenV, {}, E.Ty, E.Loc);
    if (ElseV.isValid() && ElseV != ConstObj)
      emitCopy(Tmp, ElseV, {}, E.Ty, E.Loc);
    return Tmp;
  }

  case ExprKind::Cast: {
    TypeId CastTy = Types.unqualified(E.Ty);
    if (Types.isVoid(CastTy)) {
      genDiscard(*E.Lhs);
      return ObjectId();
    }
    // (T *)malloc(...) and friends: the allocation-site pseudo-variable
    // takes the casted-to pointee type.
    if (E.Lhs->Kind == ExprKind::Call)
      return genCall(*E.Lhs, CastTy);
    // Fold the cast into the copy/load out of an lvalue when possible:
    // s = (tau)t.beta in one normalized statement.
    switch (E.Lhs->Kind) {
    case ExprKind::DeclRef:
    case ExprKind::Member:
    case ExprKind::Index: {
      Access A = genAccess(*E.Lhs);
      return materializeAccess(A, CastTy, E.Loc);
    }
    case ExprKind::Unary:
      if (E.Lhs->UOp == UnaryOp::Deref) {
        Access A = genAccess(*E.Lhs);
        return materializeAccess(A, CastTy, E.Loc);
      }
      break;
    default:
      break;
    }
    ObjectId V = genRValue(*E.Lhs, CastTy);
    if (!V.isValid())
      return ObjectId();
    if (V == ConstObj)
      return ConstObj;
    ObjectId Tmp = makeTemp(CastTy, E.Loc);
    emitCopy(Tmp, V, {}, CastTy, E.Loc);
    return Tmp;
  }

  case ExprKind::Call:
    return genCall(E, TypeHint);

  case ExprKind::Comma:
    genDiscard(*E.Lhs);
    return genRValue(*E.Rhs, TypeHint);

  case ExprKind::InitList:
    Diags.error(E.Loc, "initializer list in expression context");
    return ConstObj;
  }
  return ConstObj;
}

ObjectId Normalizer::genAssignExpr(const Expr &E) {
  Access A = genAccess(*E.Lhs);
  ObjectId V = genRValue(*E.Rhs, A.Ty);
  if (E.IsCompoundAssign) {
    ObjectId Old = materializeAccess(A, A.Ty, E.Loc);
    std::vector<ObjectId> Srcs{Old};
    if (V.isValid())
      Srcs.push_back(V);
    V = emitPtrArith(std::move(Srcs), A.Ty, E.Loc);
  }
  genAssignInto(A, V, E.Loc);
  return V.isValid() ? V : ConstObj;
}

ObjectId Normalizer::genCall(const Expr &E, TypeId TypeHint) {
  // Identify the callee: unwrap derefs ((*fp)() == fp()).
  const Expr *Callee = E.Lhs.get();
  while (Callee->Kind == ExprKind::Unary && Callee->UOp == UnaryOp::Deref &&
         Types.isFunction(Types.unqualified(Callee->Ty)))
    Callee = Callee->Lhs.get();

  // Allocation sites become heap pseudo-variables instead of calls.
  if (Callee->Kind == ExprKind::FuncRef && isAllocator(Callee->Fn)) {
    std::string_view Name = Strings.text(Callee->Fn->Name);
    ObjectId Prev; // realloc: the result may also be the old block
    for (size_t I = 0; I < E.Args.size(); ++I) {
      ObjectId ArgV = genRValue(*E.Args[I]);
      if (I == 0 && (Name == "realloc" || Name == "xrealloc"))
        Prev = ArgV;
    }
    TypeId ElemTy = Types.getArray(Types.charType(), 0); // untyped blob
    if (TypeHint.isValid() && Types.isPointer(Types.unqualified(TypeHint))) {
      TypeId Pointee = Types.unqualified(
          Types.pointee(Types.unqualified(TypeHint)));
      if (!Types.isVoid(Pointee) && !Types.isFunction(Pointee))
        ElemTy = Pointee;
    }
    ObjectId Heap = heapObject(ElemTy, E.Loc);
    TypeId PtrTy = TypeHint.isValid() &&
                           Types.isPointer(Types.unqualified(TypeHint))
                       ? Types.unqualified(TypeHint)
                       : Types.getPointer(ElemTy);
    ObjectId Tmp = makeTemp(PtrTy, E.Loc);
    emitAddrOf(Tmp, Heap, {}, PtrTy, E.Loc);
    if (Prev.isValid()) {
      emitCopy(Tmp, Prev, {}, PtrTy, E.Loc);
      // Residual call carrying realloc's deallocation of the old block.
      // No return slot: the pointer result is fully modeled above, so the
      // library summary's only live effect here is Dealloc(0).
      NormStmt &FreeCall = emit(NormOp::Call, E.Loc);
      FreeCall.DirectCallee = funcIdFor(Callee->Fn);
      FreeCall.Args.push_back(Prev);
    }
    return Tmp;
  }

  emit(NormOp::Call, E.Loc);
  size_t StmtIndex = Prog.Stmts.size() - 1;
  std::vector<ObjectId> Args;
  for (const ExprPtr &Arg : E.Args) {
    ObjectId V = genRValue(*Arg);
    Args.push_back(V.isValid() ? V : ConstObj);
  }

  ObjectId IndirectPtr;
  FuncId Direct;
  if (Callee->Kind == ExprKind::FuncRef) {
    Direct = funcIdFor(Callee->Fn);
  } else {
    IndirectPtr = genRValue(*Callee);
    if (!IndirectPtr.isValid())
      IndirectPtr = ConstObj;
  }

  ObjectId Ret;
  TypeId RetTy = Types.unqualified(E.Ty);
  if (!Types.isVoid(RetTy))
    Ret = makeTemp(E.Ty, E.Loc);

  // Re-fetch: emitted statements may have invalidated the reference.
  NormStmt &Stmt = Prog.Stmts[StmtIndex];
  Stmt.DirectCallee = Direct;
  Stmt.IndirectCallee = IndirectPtr;
  Stmt.Args = std::move(Args);
  Stmt.RetDst = Ret;
  if (IndirectPtr.isValid())
    Stmt.DerefSite = makeDerefSite(
        IndirectPtr,
        Types.isPointer(Types.unqualified(Prog.object(IndirectPtr).Ty))
            ? Types.pointee(Types.unqualified(Prog.object(IndirectPtr).Ty))
            : Types.intType(),
        /*IsCall=*/true, E.Loc);
  return Ret;
}

//===----------------------------------------------------------------------===//
// Declarations, initializers, statements
//===----------------------------------------------------------------------===//

void Normalizer::declareFunctions() {
  for (const auto &FnPtr : TU.Functions) {
    const FunctionDecl &Fn = *FnPtr;
    NormFunction NF;
    NF.Name = Fn.Name;
    NF.Ty = Fn.Ty;
    NF.IsDefined = Fn.isDefined();
    NF.IsVariadic = Fn.IsVariadic;
    Prog.Funcs.push_back(std::move(NF));
    FuncId Id(static_cast<uint32_t>(Prog.Funcs.size() - 1));
    FuncIds.emplace(&Fn, Id);

    NormFunction &Entry = Prog.Funcs[Id.index()];
    Entry.FnObj =
        Prog.makeObject(ObjectKind::Function, Fn.Name, Fn.Ty, Fn.Loc);
    Prog.Objects[Entry.FnObj.index()].AsFunction = Id;

    TypeId RetTy = Types.unqualified(Types.node(Fn.Ty).Inner);
    if (!Types.isVoid(RetTy))
      Entry.RetObj = Prog.makeObject(
          ObjectKind::Return,
          Strings.intern(std::string(Strings.text(Fn.Name)) + "$ret"),
          Types.node(Fn.Ty).Inner, Fn.Loc, Id);
    if (Fn.IsVariadic)
      Entry.VarargsObj = Prog.makeObject(
          ObjectKind::Varargs,
          Strings.intern(std::string(Strings.text(Fn.Name)) + "$va"),
          Types.getArray(Types.charType(), 0), Fn.Loc, Id);

    for (const VarDecl *Param : Fn.Params) {
      CurFunc = Id;
      Entry.Params.push_back(objectForVar(Param));
      CurFunc = FuncId();
    }
  }
}

void Normalizer::run() {
  declareFunctions();

  // Global initializers (emitted as ownerless statements).
  CurFunc = FuncId();
  for (const VarDecl *Global : TU.Globals) {
    objectForVar(Global);
    if (Global->Init)
      normalizeVarInit(Global);
  }

  for (const auto &FnPtr : TU.Functions)
    if (FnPtr->isDefined())
      normalizeFunction(*FnPtr);

  Cfg.finish(Prog.Stmts.size(), Prog.Funcs.size());
}

void Normalizer::normalizeFunction(const FunctionDecl &Fn) {
  CurFunc = funcIdFor(&Fn);
  Cfg.beginFunction(CurFunc.index(), Fn.Body->Loc);
  normalizeStmt(*Fn.Body);
  Cfg.endFunction(Fn.Body->EndLoc.isValid() ? Fn.Body->EndLoc : Fn.Body->Loc);
  CurFunc = FuncId();
}

void Normalizer::normalizeVarInit(const VarDecl *Var) {
  ObjectId Obj = objectForVar(Var);
  const Expr &Init = *Var->Init;
  TypeId Ty = Types.unqualified(Var->Ty);
  if (Init.Kind == ExprKind::InitList) {
    size_t Cursor = 0;
    FieldPath Path;
    initFromList(Obj, Path, Ty, Init.Args, Cursor, Init.Loc);
    return;
  }
  initScalar(Obj, {}, Var->Ty, Init);
}

void Normalizer::initScalar(ObjectId Base, const FieldPath &Path, TypeId Ty,
                            const Expr &Init) {
  // Special case: char arrays initialized from a string literal copy the
  // characters, not a pointer; no points-to facts arise.
  TypeId Unqual = Types.unqualified(Ty);
  if (Types.isArray(Unqual) && Init.Kind == ExprKind::StringLit)
    return;

  ObjectId V = genRValue(Init, Ty);
  if (!V.isValid())
    V = ConstObj;
  Access A;
  A.Kind = Access::Direct;
  A.Base = Base;
  A.Path = Path;
  A.Ty = Ty;
  genAssignInto(A, V, Init.Loc);
}

void Normalizer::initFromList(ObjectId Base, FieldPath &Path, TypeId Ty,
                              const std::vector<ExprPtr> &Elems,
                              size_t &Cursor, SourceLoc Loc) {
  TypeId Unqual = Types.unqualified(Ty);

  if (Types.isArray(Unqual)) {
    // Every element initializes the representative first element.
    TypeId ElemTy = Types.element(Unqual);
    uint64_t Count = Types.node(Unqual).ArraySize;
    uint64_t Limit = Count == 0 ? Elems.size() : Count;
    for (uint64_t I = 0; I < Limit && Cursor < Elems.size(); ++I) {
      const Expr &Elem = *Elems[Cursor];
      if (Elem.Kind == ExprKind::InitList) {
        ++Cursor;
        size_t SubCursor = 0;
        initFromList(Base, Path, ElemTy, Elem.Args, SubCursor, Elem.Loc);
      } else if (Types.isRecord(Types.unqualified(ElemTy)) ||
                 Types.isArray(Types.unqualified(ElemTy))) {
        initFromList(Base, Path, ElemTy, Elems, Cursor, Loc); // flat fill
      } else {
        initScalar(Base, Path, ElemTy, Elem);
        ++Cursor;
      }
    }
    return;
  }

  if (Types.isStruct(Unqual)) {
    const RecordDecl &Decl = Types.record(Types.node(Unqual).Record);
    for (uint32_t I = 0; I < Decl.Fields.size() && Cursor < Elems.size();
         ++I) {
      const Expr &Elem = *Elems[Cursor];
      TypeId FieldTy = Decl.Fields[I].Ty;
      Path.push_back(I);
      if (Elem.Kind == ExprKind::InitList) {
        ++Cursor;
        size_t SubCursor = 0;
        initFromList(Base, Path, FieldTy, Elem.Args, SubCursor, Elem.Loc);
      } else if (Types.isRecord(Types.unqualified(FieldTy)) ||
                 (Types.isArray(Types.unqualified(FieldTy)) &&
                  Elem.Kind != ExprKind::StringLit)) {
        initFromList(Base, Path, FieldTy, Elems, Cursor, Loc); // flat fill
      } else {
        initScalar(Base, Path, FieldTy, Elem);
        ++Cursor;
      }
      Path.pop_back();
    }
    return;
  }

  if (Types.isUnion(Unqual)) {
    // Initialize the first member (C90 semantics).
    const RecordDecl &Decl = Types.record(Types.node(Unqual).Record);
    if (!Decl.Fields.empty() && Cursor < Elems.size()) {
      const Expr &Elem = *Elems[Cursor];
      TypeId FieldTy = Decl.Fields[0].Ty;
      Path.push_back(0);
      if (Elem.Kind == ExprKind::InitList) {
        ++Cursor;
        size_t SubCursor = 0;
        initFromList(Base, Path, FieldTy, Elem.Args, SubCursor, Elem.Loc);
      } else {
        initScalar(Base, Path, FieldTy, Elem);
        ++Cursor;
      }
      Path.pop_back();
    }
    return;
  }

  // Scalar: one element.
  if (Cursor < Elems.size()) {
    initScalar(Base, Path, Ty, *Elems[Cursor]);
    ++Cursor;
  }
}

void Normalizer::normalizeStmt(const Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Compound:
    for (const StmtPtr &Child : S.Body)
      normalizeStmt(*Child);
    return;
  case StmtKind::ExprStmt:
    if (S.Cond)
      genDiscard(*S.Cond);
    return;
  case StmtKind::If:
    genDiscard(*S.Cond);
    Cfg.beginIf(S.Else != nullptr);
    normalizeStmt(*S.Then);
    if (S.Else) {
      Cfg.beginElse();
      normalizeStmt(*S.Else);
    }
    Cfg.endIf();
    return;
  case StmtKind::While:
    Cfg.beginWhileHeader();
    genDiscard(*S.Cond);
    Cfg.beginWhileBody();
    normalizeStmt(*S.Then);
    Cfg.endWhile();
    return;
  case StmtKind::DoWhile:
    // The condition is emitted before the body (statement order is the
    // source order of the tokens the normalizer visits); the CFG's edges
    // record that the latch executes after each iteration.
    Cfg.beginDoWhileLatch();
    genDiscard(*S.Cond);
    Cfg.beginDoWhileBody();
    normalizeStmt(*S.Then);
    Cfg.endDoWhile();
    return;
  case StmtKind::Switch:
    genDiscard(*S.Cond);
    Cfg.beginSwitch();
    normalizeStmt(*S.Then);
    Cfg.endSwitch();
    return;
  case StmtKind::For:
    if (S.InitDecl)
      normalizeStmt(*S.InitDecl);
    if (S.Init)
      genDiscard(*S.Init);
    Cfg.beginForHeader();
    if (S.Cond)
      genDiscard(*S.Cond);
    Cfg.beginForStep();
    if (S.Step)
      genDiscard(*S.Step);
    Cfg.beginForBody();
    normalizeStmt(*S.Then);
    Cfg.endFor();
    return;
  case StmtKind::Case:
  case StmtKind::Default:
    Cfg.caseLabel(S.Kind == StmtKind::Default);
    if (S.Then)
      normalizeStmt(*S.Then);
    return;
  case StmtKind::Label:
    Cfg.labelStmt(S.LabelName);
    if (S.Then)
      normalizeStmt(*S.Then);
    return;
  case StmtKind::Break:
    Cfg.breakStmt();
    return;
  case StmtKind::Continue:
    Cfg.continueStmt();
    return;
  case StmtKind::Null:
    return;
  case StmtKind::Goto:
    Cfg.gotoStmt(S.LabelName);
    return;
  case StmtKind::Return: {
    if (S.Cond) {
      const NormFunction &Fn = Prog.func(CurFunc);
      ObjectId V = genRValue(*S.Cond,
                             Fn.RetObj.isValid() ? Prog.object(Fn.RetObj).Ty
                                                 : TypeId());
      if (Fn.RetObj.isValid() && V.isValid() && V != ConstObj)
        emitCopy(Fn.RetObj, V, {}, Prog.object(Fn.RetObj).Ty, S.Loc);
    }
    Cfg.returnStmt();
    return;
  }
  case StmtKind::DeclStmt:
    for (VarDecl *Var : S.Decls) {
      objectForVar(Var);
      if (Var->Init)
        normalizeVarInit(Var);
    }
    return;
  }
}
