//===--- NormIR.cpp -------------------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "norm/NormIR.h"

using namespace spa;

NormProgram::StmtOrder NormProgram::stmtOrder() const {
  StmtOrder Order;
  Order.ByFunc.resize(Funcs.size());
  for (uint32_t I = 0; I < Stmts.size(); ++I) {
    const NormStmt &S = Stmts[I];
    if (S.Owner.isValid())
      Order.ByFunc[S.Owner.index()].push_back(I);
    else
      Order.Globals.push_back(I);
  }
  return Order;
}

std::string NormProgram::objectName(ObjectId Id) const {
  const NormObject &Obj = object(Id);
  std::string Name = Obj.Name.isValid() ? std::string(Strings.text(Obj.Name))
                                        : "<unnamed>";
  if (Obj.Owner.isValid())
    return std::string(Strings.text(func(Obj.Owner).Name)) + "::" + Name;
  return Name;
}

/// Renders ".f1.f2" for \p Path relative to \p RootTy.
static std::string pathToString(const TypeTable &Types,
                                const StringInterner &Strings, TypeId RootTy,
                                const FieldPath &Path) {
  std::string Out;
  TypeId Ty = RootTy;
  for (uint32_t Step : Path) {
    Ty = Types.stripArrays(Types.unqualified(Ty));
    if (!Types.isRecord(Ty))
      return Out + ".<bad>";
    const RecordDecl &Decl = Types.record(Types.node(Ty).Record);
    if (Step >= Decl.Fields.size())
      return Out + ".<bad>";
    Out += ".";
    Out += Strings.text(Decl.Fields[Step].Name);
    Ty = Decl.Fields[Step].Ty;
  }
  return Out;
}

std::string NormProgram::stmtToString(const NormStmt &S) const {
  auto Obj = [&](ObjectId Id) {
    return Id.isValid() ? objectName(Id) : std::string("<none>");
  };
  auto Cast = [&](TypeId Ty) {
    return Ty.isValid() ? "(" + Types.toString(Ty, Strings) + ") "
                        : std::string();
  };
  switch (S.Op) {
  case NormOp::AddrOf:
    return Obj(S.Dst) + " = " + Cast(S.LhsTy) + "&" + Obj(S.Src) +
           pathToString(Types, Strings, object(S.Src).Ty, S.Path);
  case NormOp::AddrOfDeref:
    return Obj(S.Dst) + " = &((*" + Obj(S.Src) + ")" +
           pathToString(Types, Strings, S.DeclPointeeTy, S.Path) + ")";
  case NormOp::Copy:
    return Obj(S.Dst) + " = " + Cast(S.LhsTy) + Obj(S.Src) +
           pathToString(Types, Strings, object(S.Src).Ty, S.Path);
  case NormOp::Load:
    return Obj(S.Dst) + " = " + Cast(S.LhsTy) + "*" + Obj(S.Src);
  case NormOp::Store:
    return "*" + Obj(S.Dst) + " = " + Cast(S.LhsTy) + Obj(S.Src);
  case NormOp::PtrArith: {
    std::string Out = Obj(S.Dst) + " = arith(";
    for (size_t I = 0; I < S.ArithSrcs.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Obj(S.ArithSrcs[I]);
    }
    return Out + ")";
  }
  case NormOp::Call: {
    std::string Out;
    if (S.RetDst.isValid())
      Out += Obj(S.RetDst) + " = ";
    if (S.DirectCallee.isValid())
      Out += std::string(Strings.text(func(S.DirectCallee).Name));
    else
      Out += "(*" + Obj(S.IndirectCallee) + ")";
    Out += "(";
    for (size_t I = 0; I < S.Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Obj(S.Args[I]);
    }
    return Out + ")";
  }
  }
  return "<?>";
}
