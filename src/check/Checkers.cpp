//===--- Checkers.cpp - Client checkers over the points-to results --------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "check/Checkers.h"

#include "ctypes/Compat.h"

#include <algorithm>
#include <tuple>

using namespace spa;

namespace {

//===----------------------------------------------------------------------===//
// cast-safety
//===----------------------------------------------------------------------===//

/// How a declared pointee type relates to one pointed-to object's layout.
enum class ViewClass {
  Ok,         ///< some view of the object matches the declared type
  Mismatch,   ///< no view matches at all
  Truncation, ///< a common initial sequence matches, but the declared view
              ///< is larger than the object
};

/// Char-family and void views are universal: ISO C blesses byte access to
/// any object, and untyped heap blobs / $extern are modeled as char[0].
bool isByteView(const TypeTable &Types, TypeId Ty) {
  switch (Types.kind(Ty)) {
  case TypeKind::Void:
  case TypeKind::Char:
  case TypeKind::SChar:
  case TypeKind::UChar:
    return true;
  default:
    return false;
  }
}

/// Classifies a dereference through declared pointee \p DeclTy of an
/// object declared as \p ObjTy. The object offers more views than its top
/// type: a pointer to the first member (transitively) is a valid view, so
/// the member types are searched breadth-first. This predicate depends
/// only on the two types and the layout — not on the field model — so the
/// set of flagged sites is monotone in the points-to sets, which is what
/// the cross-model property test asserts.
ViewClass classifyView(const TypeTable &Types, const LayoutEngine &Layout,
                       TypeId DeclTy, TypeId ObjTy) {
  TypeId T = Types.canonical(Types.stripArrays(Types.unqualified(DeclTy)));
  TypeId O = Types.canonical(Types.stripArrays(Types.unqualified(ObjTy)));
  if (isByteView(Types, T) || isByteView(Types, O))
    return ViewClass::Ok;
  if (Types.isFunction(T) || Types.isFunction(O))
    return areCompatible(Types, T, O) ? ViewClass::Ok : ViewClass::Mismatch;
  if (Types.isRecord(O) && !Types.record(Types.node(O).Record).IsComplete)
    return ViewClass::Ok; // nothing known to contradict

  // Breadth-first over the object's member types: each is the type of a
  // prefix-addressable view (arrays collapse to one element, so every
  // member is reachable by some pointer into the object).
  unsigned BestCis = 0;
  std::vector<TypeId> Queue{O}, Seen{O};
  for (size_t Head = 0; Head < Queue.size() && Queue.size() < 256; ++Head) {
    TypeId Cur = Queue[Head];
    if (areCompatible(Types, T, Cur))
      return ViewClass::Ok;
    if (Types.isStruct(T) && Types.isStruct(Cur))
      BestCis = std::max(BestCis,
                         commonInitialSeqLen(Types, Types.node(T).Record,
                                             Types.node(Cur).Record));
    if (!Types.isRecord(Cur))
      continue;
    const RecordDecl &Decl = Types.record(Types.node(Cur).Record);
    if (!Decl.IsComplete)
      return ViewClass::Ok; // incomplete member: cannot contradict
    for (const FieldDecl &F : Decl.Fields) {
      TypeId FT = Types.canonical(Types.stripArrays(Types.unqualified(F.Ty)));
      if (isByteView(Types, FT))
        return ViewClass::Ok;
      if (std::find(Seen.begin(), Seen.end(), FT) == Seen.end()) {
        Seen.push_back(FT);
        Queue.push_back(FT);
      }
    }
  }
  if (BestCis > 0)
    return Layout.sizeOf(T) > Layout.sizeOf(O) ? ViewClass::Truncation
                                               : ViewClass::Ok;
  return ViewClass::Mismatch;
}

class CastSafetyChecker : public Checker {
public:
  const char *id() const override { return "cast-safety"; }
  const char *description() const override {
    return "dereferences whose declared pointee type matches no layout view "
           "of any pointed-to object";
  }

  void run(CheckContext &Ctx) override {
    NormProgram &Prog = Ctx.program();
    const TypeTable &Types = Ctx.types();
    Solver &S = Ctx.solver();
    const std::vector<SiteEvents> &Events = S.siteEvents();
    for (size_t I = 0; I < Prog.DerefSites.size(); ++I) {
      const DerefSite &Site = Prog.DerefSites[I];
      if (Site.IsCall)
        continue; // indirect calls bind by function identity, not layout
      ViewClass Worst = ViewClass::Ok;
      ObjectId Offender;
      IdSet<ObjectTag> SeenObjs;
      for (NodeId Target : S.derefTargets(Site)) {
        ObjectId Obj = S.model().nodes().objectOf(Target);
        if (!SeenObjs.insert(Obj))
          continue;
        const NormObject &Info = Prog.object(Obj);
        if (Info.Kind == ObjectKind::Constant ||
            Info.Kind == ObjectKind::Unknown)
          continue;
        ViewClass VC = classifyView(Types, Ctx.layout(), Site.DeclPointeeTy,
                                    Info.Ty);
        // Mismatch outranks Truncation; the first offender of the worst
        // class is reported (points-to sets iterate deterministically).
        if (VC == ViewClass::Mismatch && Worst != ViewClass::Mismatch) {
          Worst = VC;
          Offender = Obj;
        } else if (VC == ViewClass::Truncation && Worst == ViewClass::Ok) {
          Worst = VC;
          Offender = Obj;
        }
      }
      if (Worst == ViewClass::Ok)
        continue;
      std::string PtrName = Prog.objectName(Site.Ptr);
      std::string DeclStr = Types.toString(Site.DeclPointeeTy, Prog.Strings);
      std::string ObjStr =
          Types.toString(Prog.object(Offender).Ty, Prog.Strings);
      std::string Msg;
      if (Worst == ViewClass::Mismatch)
        Msg = "dereference of '" + PtrName + "' as '" + DeclStr +
              "' may access '" + Prog.objectName(Offender) +
              "' whose type '" + ObjStr + "' matches no view of that layout";
      else
        Msg = "dereference of '" + PtrName + "' as '" + DeclStr +
              "' may read past the end of '" + Prog.objectName(Offender) +
              "' of smaller type '" + ObjStr +
              "' (only a common initial sequence matches)";
      Ctx.Diags.report(DiagKind::Warning, Site.Loc,
                       Worst == ViewClass::Mismatch ? "cast-safety"
                                                    : "cast-truncation",
                       std::move(Msg), id());
      if (I < Events.size() && Events[I].Mismatch)
        Ctx.Diags.note(Site.Loc, "the field model recorded a type-mismatched "
                                 "lookup at this site during the solve");
    }
  }
};

//===----------------------------------------------------------------------===//
// null-deref
//===----------------------------------------------------------------------===//

/// A function is "referenced" if it is main, directly called, or used as a
/// value anywhere. In an unreferenced function the parameters are never
/// bound, so facts derived from them describe dead code — empty points-to
/// sets are not null dereferences, and freed marks reached only through an
/// unbound parameter are not uses after free. Both the null-deref and the
/// use-after-free checkers suppress such sites with the same predicate
/// (see shouldSuppressDeadParam).
std::vector<char> referencedFunctions(const NormProgram &Prog) {
  std::vector<char> Referenced(Prog.Funcs.size(), 0);
  FuncId Main = Prog.findFunc(Prog.Strings.intern("main"));
  if (Main.isValid())
    Referenced[Main.index()] = 1;
  auto MarkObj = [&](ObjectId Obj) {
    if (!Obj.isValid())
      return;
    const NormObject &Info = Prog.object(Obj);
    if (Info.Kind == ObjectKind::Function && Info.AsFunction.isValid())
      Referenced[Info.AsFunction.index()] = 1;
  };
  for (const NormStmt &St : Prog.Stmts) {
    if (St.Op == NormOp::Call && St.DirectCallee.isValid())
      Referenced[St.DirectCallee.index()] = 1;
    MarkObj(St.Src);
    for (ObjectId Obj : St.ArithSrcs)
      MarkObj(Obj);
    for (ObjectId Obj : St.Args)
      MarkObj(Obj);
  }
  return Referenced;
}

/// True if the site's pointer lives in an unreferenced function that takes
/// parameters — nothing ever bound them, so the site cannot execute.
bool shouldSuppressDeadParam(const NormProgram &Prog,
                             const std::vector<char> &Referenced,
                             const DerefSite &Site) {
  const NormObject &P = Prog.object(Site.Ptr);
  return P.Owner.isValid() && !Referenced[P.Owner.index()] &&
         !Prog.func(P.Owner).Params.empty();
}

class NullDerefChecker : public Checker {
public:
  const char *id() const override { return "null-deref"; }
  const char *description() const override {
    return "dereferences of pointers that may be null, uninitialized, or "
           "corrupted (empty points-to set)";
  }

  void run(CheckContext &Ctx) override {
    NormProgram &Prog = Ctx.program();
    Solver &S = Ctx.solver();
    const std::vector<SiteEvents> &Events = S.siteEvents();
    std::vector<char> Referenced = referencedFunctions(Prog);

    for (size_t I = 0; I < Prog.DerefSites.size() && I < Events.size(); ++I) {
      const DerefSite &Site = Prog.DerefSites[I];
      std::string Variant;
      if (Events[I].EmptyDeref) {
        Variant = "points to nothing: it may be null or uninitialized";
      } else {
        // TrackUnknown mode: a set holding only the Unknown location means
        // every value the pointer can hold came from arithmetic the
        // analysis gave up on.
        bool AllUnknown = true;
        for (NodeId Target : S.derefTargets(Site))
          if (Prog.object(S.model().nodes().objectOf(Target)).Kind !=
              ObjectKind::Unknown) {
            AllUnknown = false;
            break;
          }
        if (!AllUnknown)
          continue;
        Variant = "may only hold an unknown (possibly corrupted) pointer";
      }
      if (shouldSuppressDeadParam(Prog, Referenced, Site))
        continue;
      Ctx.Diags.report(DiagKind::Warning, Site.Loc, "null-deref",
                       (Site.IsCall ? "call through '" : "dereference of '") +
                           Prog.objectName(Site.Ptr) + "' " + Variant,
                       id());
    }
  }
};

//===----------------------------------------------------------------------===//
// use-after-free
//===----------------------------------------------------------------------===//

class UseAfterFreeChecker : public Checker {
public:
  const char *id() const override { return "use-after-free"; }
  const char *description() const override {
    return "dereferences that may reach a heap object after it was freed";
  }

  void run(CheckContext &Ctx) override {
    NormProgram &Prog = Ctx.program();
    Solver &S = Ctx.solver();
    if (S.freedObjects().empty())
      return;
    const std::vector<SiteEvents> &Events = S.siteEvents();
    std::vector<char> Referenced = referencedFunctions(Prog);
    for (size_t I = 0; I < Prog.DerefSites.size(); ++I) {
      const DerefSite &Site = Prog.DerefSites[I];
      if (shouldSuppressDeadParam(Prog, Referenced, Site))
        continue;
      // With a flow verdict (src/flow/), only objects that may already be
      // deallocated *when control reaches this site* count; otherwise
      // every freed alias counts, order ignored (the paper's baseline).
      const SiteEvents *E =
          I < Events.size() && Events[I].FlowRefined ? &Events[I] : nullptr;
      // One finding per site, attributed deterministically: among the
      // freed targets, pick the one freed at the earliest source point
      // (line, column, byte offset), object id breaking exact ties — the
      // choice must not depend on points-to node enumeration order.
      bool HaveBest = false;
      ObjectId Best;
      SourceLoc BestAt;
      for (NodeId Target : S.derefTargets(Site)) {
        ObjectId Obj = S.model().nodes().objectOf(Target);
        if (E ? !E->InvalidatedBefore.contains(Obj) : !S.isFreed(Obj))
          continue;
        SourceLoc At = S.freedAt(Obj);
        auto key = [](const SourceLoc &L, ObjectId O) {
          return std::make_tuple(L.Line, L.Column, L.Offset, O.index());
        };
        if (!HaveBest || key(At, Obj) < key(BestAt, Best)) {
          HaveBest = true;
          Best = Obj;
          BestAt = At;
        }
      }
      if (HaveBest)
        Ctx.Diags.report(
            DiagKind::Warning, Site.Loc, "use-after-free",
            (Site.IsCall ? "call through '" : "dereference of '") +
                Prog.objectName(Site.Ptr) + "' may use '" +
                Prog.objectName(Best) + "' after it was freed at " +
                toString(BestAt),
            id());
    }
  }
};

//===----------------------------------------------------------------------===//
// unknown-external
//===----------------------------------------------------------------------===//

class UnknownExternalChecker : public Checker {
public:
  const char *id() const override { return "unknown-external"; }
  const char *description() const override {
    return "calls to external functions with no summary, silently treated "
           "as having no pointer effects";
  }

  void run(CheckContext &Ctx) override {
    NormProgram &Prog = Ctx.program();
    const LibrarySummaries &Lib = Ctx.solver().summaries();
    for (const NormStmt &St : Prog.Stmts) {
      if (St.Op != NormOp::Call || !St.DirectCallee.isValid())
        continue;
      const NormFunction &Fn = Prog.func(St.DirectCallee);
      if (Fn.IsDefined)
        continue;
      std::string_view Name = Prog.Strings.text(Fn.Name);
      if (Lib.hasSummary(Name))
        continue;
      Ctx.Diags.report(DiagKind::Warning, St.Loc, "unknown-external",
                       "call to external function '" + std::string(Name) +
                           "' has no summary; its pointer effects are "
                           "ignored",
                       id());
    }
  }
};

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

template <class T> std::unique_ptr<Checker> make() {
  return std::make_unique<T>();
}

struct RegistryEntry {
  const char *Id;
  std::unique_ptr<Checker> (*Make)();
};

const RegistryEntry Entries[] = {
    {"cast-safety", make<CastSafetyChecker>},
    {"null-deref", make<NullDerefChecker>},
    {"use-after-free", make<UseAfterFreeChecker>},
    {"unknown-external", make<UnknownExternalChecker>},
};

} // namespace

std::vector<std::string> CheckerRegistry::allIds() {
  std::vector<std::string> Out;
  for (const RegistryEntry &E : Entries)
    Out.push_back(E.Id);
  return Out;
}

const char *CheckerRegistry::descriptionOf(std::string_view Id) {
  for (const RegistryEntry &E : Entries)
    if (Id == E.Id) {
      // Instantiation is cheap; descriptions are string literals, so the
      // pointer stays valid after the checker is destroyed.
      return E.Make()->description();
    }
  return nullptr;
}

std::unique_ptr<Checker> CheckerRegistry::create(std::string_view Id) {
  for (const RegistryEntry &E : Entries)
    if (Id == E.Id)
      return E.Make();
  return nullptr;
}

const char *spa::findingCodeDescription(std::string_view Code) {
  if (Code == "cast-safety")
    return "Dereference whose declared pointee type matches no layout view "
           "of a pointed-to object";
  if (Code == "cast-truncation")
    return "Dereference that may read past the end of a smaller pointed-to "
           "object (only a common initial sequence matches)";
  if (Code == "null-deref")
    return "Dereference of a pointer that may be null, uninitialized, or "
           "corrupted (empty points-to set)";
  if (Code == "use-after-free")
    return "Dereference that may reach a heap object after it was freed";
  if (Code == "unknown-external")
    return "Call to an external function without a summary; its pointer "
           "effects are ignored";
  return nullptr;
}

CheckReport spa::runCheckers(Analysis &A, const std::vector<std::string> &Ids,
                             DiagnosticEngine &Diags) {
  CheckContext Ctx{A, Diags};
  CheckReport Report;
  std::vector<std::string> Use =
      Ids.empty() ? CheckerRegistry::allIds() : Ids;
  for (const std::string &Id : Use) {
    std::unique_ptr<Checker> C = CheckerRegistry::create(Id);
    if (!C)
      continue; // callers validate ids up front
    C->run(Ctx);
    Report.Ran.push_back(Id);
  }
  Diags.sortAndDedupe();
  for (const Diagnostic &D : Diags.all())
    if (D.Kind != DiagKind::Note && !D.Code.empty())
      ++Report.Findings;
  return Report;
}
