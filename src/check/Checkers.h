//===--- Checkers.h - Client checkers over the points-to results -*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client-checker layer: small analyses that consume a finished
/// points-to fixpoint (an Analysis that has run) and report findings
/// through a DiagnosticEngine. The paper motivates its framework with
/// exactly these clients — "detecting security holes" and flagging
/// accesses through bad casts — and this layer is their realization.
///
/// Checkers never re-run the solver. Everything they need is either the
/// final points-to sets (Solver::derefTargets) or the per-site resolution
/// events the solver records while it runs (Solver::siteEvents,
/// Solver::freedObjects): lookup outcomes, forced collapses, empty-set
/// dereferences, and Dealloc effects from library summaries.
///
/// Each finding carries a stable code (Diagnostic::Code) that doubles as
/// its SARIF rule id:
///   cast-safety       declared pointee type disagrees with every view of
///                     a pointed-to object's layout
///   cast-truncation   a shared common initial sequence exists, but the
///                     declared view reads past the end of the object
///   null-deref        a dereferenced pointer's points-to set is empty (or
///                     holds only the Unknown location): null, uninitialized,
///                     or corrupted
///   use-after-free    a dereference may reach a heap object already passed
///                     to free/realloc
///   unknown-external  a call to an external function with no summary is
///                     silently treated as a no-op
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CHECK_CHECKERS_H
#define SPA_CHECK_CHECKERS_H

#include "pta/Frontend.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace spa {

/// Everything a checker may look at. The analysis is non-const because
/// points-to queries can lazily materialize nodes; the fixpoint itself is
/// never changed by a checker.
struct CheckContext {
  Analysis &A;
  DiagnosticEngine &Diags;

  Solver &solver() { return A.solver(); }
  NormProgram &program() { return A.solver().program(); }
  const TypeTable &types() { return A.solver().program().Types; }
  const LayoutEngine &layout() const { return A.layout(); }
};

/// One checker: a named pass over the finished analysis.
class Checker {
public:
  virtual ~Checker() = default;
  /// Stable identifier ("cast-safety"), used by --check=LIST.
  virtual const char *id() const = 0;
  /// One-line human description.
  virtual const char *description() const = 0;
  /// Emits findings into \p Ctx.Diags.
  virtual void run(CheckContext &Ctx) = 0;
};

/// Static registry of the built-in checkers.
class CheckerRegistry {
public:
  /// Ids of every registered checker, in their canonical run order.
  static std::vector<std::string> allIds();
  /// Description of \p Id; null if unknown.
  static const char *descriptionOf(std::string_view Id);
  /// Instantiates \p Id; null if unknown.
  static std::unique_ptr<Checker> create(std::string_view Id);
};

/// Description of a finding code (SARIF rule id); null if unknown. Codes
/// are not 1:1 with checker ids: cast-safety also emits cast-truncation.
const char *findingCodeDescription(std::string_view Code);

/// Result of one runCheckers call.
struct CheckReport {
  /// Number of findings: non-note diagnostics carrying a code.
  unsigned Findings = 0;
  /// Checkers that actually ran, in order.
  std::vector<std::string> Ran;
};

/// Runs the checkers named in \p Ids (all of them if empty) over \p A,
/// which must already have run to fixpoint. Findings are appended to
/// \p Diags, then the whole engine is sorted and deduplicated. Unknown
/// ids are skipped (callers validate against CheckerRegistry::allIds()).
CheckReport runCheckers(Analysis &A, const std::vector<std::string> &Ids,
                        DiagnosticEngine &Diags);

} // namespace spa

#endif // SPA_CHECK_CHECKERS_H
