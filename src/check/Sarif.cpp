//===--- Sarif.cpp --------------------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "check/Sarif.h"

#include "check/Checkers.h"
#include "support/Json.h"

#include <algorithm>

using namespace spa;

static const char *levelOf(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "none";
}

std::string spa::findingsToSarif(const DiagnosticEngine &Diags,
                                 const std::string &ArtifactUri) {
  // Rules: the distinct codes present, in first-appearance order (the
  // engine is already sorted, so the order is deterministic).
  std::vector<std::string> Rules;
  for (const Diagnostic &D : Diags.all())
    if (!D.Code.empty() &&
        std::find(Rules.begin(), Rules.end(), D.Code) == Rules.end())
      Rules.push_back(D.Code);

  std::string Out;
  JsonWriter W(Out);
  W.open(nullptr);
  W.field("$schema", std::string("https://raw.githubusercontent.com/"
                                 "oasis-tcs/sarif-spec/master/Schemata/"
                                 "sarif-schema-2.1.0.json"));
  W.field("version", std::string("2.1.0"));
  W.openArray("runs");
  W.open(nullptr);

  W.open("tool");
  W.open("driver");
  W.field("name", std::string("spa"));
  W.field("informationUri",
          std::string("https://doi.org/10.1145/301631.301647"));
  W.openArray("rules");
  for (const std::string &Code : Rules) {
    W.open(nullptr);
    W.field("id", Code);
    const char *Desc = findingCodeDescription(Code);
    W.open("shortDescription");
    W.field("text", std::string(Desc ? Desc : Code.c_str()));
    W.close();
    W.close();
  }
  W.closeArray();
  W.close(); // driver
  W.close(); // tool

  W.openArray("artifacts");
  W.open(nullptr);
  W.open("location");
  W.field("uri", ArtifactUri);
  W.close();
  W.close();
  W.closeArray();

  W.openArray("results");
  for (const Diagnostic &D : Diags.all()) {
    if (D.Code.empty())
      continue;
    size_t RuleIndex =
        std::find(Rules.begin(), Rules.end(), D.Code) - Rules.begin();
    W.open(nullptr);
    W.field("ruleId", D.Code);
    W.field("ruleIndex", static_cast<uint64_t>(RuleIndex));
    W.field("level", std::string(levelOf(D.Kind)));
    W.open("message");
    W.field("text", D.Message);
    W.close();
    W.openArray("locations");
    W.open(nullptr);
    W.open("physicalLocation");
    W.open("artifactLocation");
    W.field("uri", ArtifactUri);
    W.field("index", static_cast<uint64_t>(0));
    W.close();
    if (D.Loc.isValid()) {
      W.open("region");
      W.field("startLine", static_cast<uint64_t>(D.Loc.Line));
      if (D.Loc.Column != 0)
        W.field("startColumn", static_cast<uint64_t>(D.Loc.Column));
      W.close();
    }
    W.close(); // physicalLocation
    W.close(); // location
    W.closeArray();
    W.close(); // result
  }
  W.closeArray();

  W.close(); // run
  W.closeArray();
  W.close();
  Out += '\n';
  return Out;
}
