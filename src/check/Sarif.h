//===--- Sarif.h - SARIF 2.1.0 export of checker findings ------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes checker findings (diagnostics carrying a Code) as a minimal
/// but valid SARIF 2.1.0 log: one run, one tool driver ("spa"), one rule
/// per distinct finding code, one artifact (the analyzed file), and one
/// result per finding. Diagnostics without a code (front-end warnings)
/// are not findings and are omitted.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CHECK_SARIF_H
#define SPA_CHECK_SARIF_H

#include "support/Diagnostics.h"

#include <string>

namespace spa {

/// Renders \p Diags as a SARIF 2.1.0 JSON document. \p ArtifactUri is the
/// analyzed file's URI (plain relative paths are accepted by SARIF
/// consumers); results reference it via artifact index 0.
std::string findingsToSarif(const DiagnosticEngine &Diags,
                            const std::string &ArtifactUri);

} // namespace spa

#endif // SPA_CHECK_SARIF_H
