//===--- Compat.h - ISO C compatible types ---------------------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ISO C "compatible types" (C90 6.1.2.6 / C99 6.2.7), as used by the
/// paper's Common Initial Sequence analysis instance. Following the paper's
/// footnote: an int is compatible with an enum. Within a single translation
/// unit, two struct/union types are compatible iff they are the same
/// declaration.
///
/// Deviation from the ISO letter: qualifiers are ignored (the standard and
/// the paper's footnote make "volatile T" incompatible with "T"). A
/// qualification conversion is not a cast, qualifiers never affect layout,
/// and treating them as mismatches would put every const-correct program
/// into the "casting involved" statistics; ignoring them is safe and
/// strictly more precise.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CTYPES_COMPAT_H
#define SPA_CTYPES_COMPAT_H

#include "ctypes/TypeTable.h"

namespace spa {

/// Returns true if \p A and \p B are compatible types.
bool areCompatible(const TypeTable &Types, TypeId A, TypeId B);

/// Returns the length of the common initial sequence of two struct types:
/// the number of leading corresponding direct fields with compatible types.
/// Returns 0 if either record is not a complete struct (unions excluded).
unsigned commonInitialSeqLen(const TypeTable &Types, RecordId A, RecordId B);

} // namespace spa

#endif // SPA_CTYPES_COMPAT_H
