//===--- Type.h - C type system --------------------------------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C type representation shared by the front end and the pointer
/// analysis. Types are immutable, interned nodes identified by TypeId;
/// struct/union definitions are nominal RecordDecls that may be completed
/// after creation (to support self-referential types).
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CTYPES_TYPE_H
#define SPA_CTYPES_TYPE_H

#include "support/IdTypes.h"
#include "support/StringInterner.h"

#include <cstdint>
#include <vector>

namespace spa {

struct TypeTag {};
/// Identifier of an interned type node.
using TypeId = Id<TypeTag>;

struct RecordTag {};
/// Identifier of a struct or union declaration.
using RecordId = Id<RecordTag>;

struct EnumTag {};
/// Identifier of an enum declaration.
using EnumId = Id<EnumTag>;

/// The kind of a type node.
enum class TypeKind : uint8_t {
  Void,
  Char,      ///< plain char
  SChar,     ///< signed char
  UChar,     ///< unsigned char
  Short,
  UShort,
  Int,
  UInt,
  Long,
  ULong,
  LongLong,
  ULongLong,
  Float,
  Double,
  LongDouble,
  Enum,
  Pointer,
  Array,
  Record,    ///< struct or union (see RecordDecl::IsUnion)
  Function,
};

/// const/volatile qualifier bits.
enum Qualifiers : uint8_t {
  QualNone = 0,
  QualConst = 1,
  QualVolatile = 2,
};

/// One interned type node. Which members are meaningful depends on Kind.
struct TypeNode {
  TypeKind Kind = TypeKind::Void;
  uint8_t Quals = QualNone;
  /// Pointer: pointee. Array: element. Function: return type.
  TypeId Inner;
  /// Array: element count; 0 means incomplete ("[]"). Arrays are collapsed
  /// to a single representative element by the analysis, but the count still
  /// matters for sizeof.
  uint64_t ArraySize = 0;
  /// Record: the struct/union declaration.
  RecordId Record;
  /// Enum: the enum declaration.
  EnumId Enum;
  /// Function: parameter types.
  std::vector<TypeId> Params;
  /// Function: true if declared with a trailing "...".
  bool Variadic = false;
};

/// A named member of a struct or union.
struct FieldDecl {
  Symbol Name;
  TypeId Ty;
};

/// A struct or union declaration. Fields may be filled in after creation;
/// IsComplete flips to true once the definition body has been seen.
struct RecordDecl {
  bool IsUnion = false;
  Symbol Tag;            ///< invalid for anonymous records
  bool IsComplete = false;
  std::vector<FieldDecl> Fields;
};

/// An enum declaration. Enumerator values live in the front end's symbol
/// table; the declaration itself only carries identity and its tag.
struct EnumDecl {
  Symbol Tag; ///< invalid for anonymous enums
  bool IsComplete = false;
};

/// A path from the top of an object down to a (possibly nested) member:
/// a sequence of member indices into successive RecordDecl::Fields arrays.
/// Array types are transparent: the path steps from an array directly into
/// a member of its (single representative) element when the element is a
/// record; the array itself never consumes a path step.
using FieldPath = std::vector<uint32_t>;

} // namespace spa

#endif // SPA_CTYPES_TYPE_H
