//===--- Flatten.h - Flattened leaf fields of an object --------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Enumerates the "leaf" fields of an object type in layout order. A leaf
/// is a scalar member, a union (conservatively treated as one blob), or an
/// incomplete record. Arrays are transparent: the enumeration descends into
/// the single representative element, recording which leaves lie inside an
/// array so that followingFields can apply the paper's array adjustment
/// ("the followingFields of a field within an array must include all fields
/// within that array").
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CTYPES_FLATTEN_H
#define SPA_CTYPES_FLATTEN_H

#include "ctypes/Layout.h"
#include "ctypes/TypeTable.h"

#include <optional>
#include <vector>

namespace spa {

/// One leaf field of a flattened object type.
struct LeafField {
  /// Member-index path from the root type to this leaf ("normalized" form
  /// for a leaf is the path itself; for record objects it is the path to
  /// the innermost first leaf).
  FieldPath Path;
  /// Type of the leaf.
  TypeId Ty;
  /// Byte offset from the start of the root object (representative array
  /// element; union members share their union's offset).
  uint64_t Offset = 0;
  /// If this leaf lies inside one or more array members, the index range
  /// [ArrayGroupBegin, ArrayGroupEnd) of leaves belonging to the
  /// *outermost* enclosing array; otherwise both are ~0.
  uint32_t ArrayGroupBegin = UINT32_MAX;
  uint32_t ArrayGroupEnd = UINT32_MAX;
};

/// Flattened view of one object type, in declaration/layout order.
class FlattenedType {
public:
  /// Flattens \p Root. The layout engine supplies leaf offsets (the
  /// field-name-based analyses ignore them; the Offsets instance uses
  /// them).
  FlattenedType(const TypeTable &Types, const LayoutEngine &Layout,
                TypeId Root);

  const std::vector<LeafField> &leaves() const { return Leaves; }

  /// Index of the leaf whose path equals \p Path, if \p Path designates a
  /// leaf (i.e. is already in normalized form).
  std::optional<uint32_t> leafIndexOfPath(const FieldPath &Path) const;

  /// Normalized form of an arbitrary member path \p Path: descends into
  /// first fields until reaching a leaf, and returns that leaf's index.
  /// This is exactly the paper's "normalize" for the field-name-based
  /// instances.
  uint32_t normalizedLeaf(const FieldPath &Path) const;

  /// Indices of \p Leaf itself plus every leaf that follows it, including
  /// (per the array adjustment) every leaf of the outermost array group
  /// containing \p Leaf, if any.
  std::vector<uint32_t> fromLeafOnward(uint32_t Leaf) const;

private:
  void flatten(TypeId Ty, FieldPath &Path, uint64_t Offset, int ArrayDepth,
               uint32_t ArrayGroupStart);

  const TypeTable &Types;
  std::vector<LeafField> Leaves;
};

} // namespace spa

#endif // SPA_CTYPES_FLATTEN_H
