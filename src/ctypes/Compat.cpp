//===--- Compat.cpp -------------------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "ctypes/Compat.h"

using namespace spa;

bool spa::areCompatible(const TypeTable &Types, TypeId A, TypeId B) {
  if (A == B)
    return true;
  // Deviation from the ISO letter (documented in Compat.h): qualifiers are
  // ignored. A qualification conversion is not a cast, and qualifiers
  // never affect layout, so treating "const T" as matching "T" is safe and
  // keeps ordinary const-correct code out of the mismatch statistics.
  A = Types.unqualified(A);
  B = Types.unqualified(B);
  if (A == B)
    return true;
  const TypeNode &NA = Types.node(A);
  const TypeNode &NB = Types.node(B);

  // int <-> enum (the paper's footnote on compatible types).
  auto isIntOrEnum = [](TypeKind K) {
    return K == TypeKind::Int || K == TypeKind::Enum;
  };
  if (isIntOrEnum(NA.Kind) && isIntOrEnum(NB.Kind))
    return NA.Kind != NB.Kind || NA.Enum == NB.Enum;

  if (NA.Kind != NB.Kind)
    return false;

  switch (NA.Kind) {
  case TypeKind::Pointer:
    return areCompatible(Types, NA.Inner, NB.Inner);
  case TypeKind::Array:
    // Compatible elements; sizes must agree unless one is incomplete.
    if (!areCompatible(Types, NA.Inner, NB.Inner))
      return false;
    return NA.ArraySize == 0 || NB.ArraySize == 0 ||
           NA.ArraySize == NB.ArraySize;
  case TypeKind::Record:
    return NA.Record == NB.Record;
  case TypeKind::Function: {
    if (!areCompatible(Types, NA.Inner, NB.Inner))
      return false;
    if (NA.Variadic != NB.Variadic || NA.Params.size() != NB.Params.size())
      return false;
    for (size_t I = 0; I < NA.Params.size(); ++I)
      if (!areCompatible(Types, NA.Params[I], NB.Params[I]))
        return false;
    return true;
  }
  default:
    // Same-kind scalars with matching qualifiers: only reachable when the
    // ids differ yet the kinds match, which cannot happen for interned
    // builtins; be permissive anyway.
    return true;
  }
}

unsigned spa::commonInitialSeqLen(const TypeTable &Types, RecordId A,
                                  RecordId B) {
  const RecordDecl &DA = Types.record(A);
  const RecordDecl &DB = Types.record(B);
  if (DA.IsUnion || DB.IsUnion || !DA.IsComplete || !DB.IsComplete)
    return 0;
  unsigned N =
      static_cast<unsigned>(std::min(DA.Fields.size(), DB.Fields.size()));
  unsigned Len = 0;
  for (unsigned I = 0; I < N; ++I) {
    if (!areCompatible(Types, DA.Fields[I].Ty, DB.Fields[I].Ty))
      break;
    ++Len;
  }
  return Len;
}
