//===--- TypeTable.cpp ----------------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "ctypes/TypeTable.h"

using namespace spa;

TypeTable::TypeTable() {
  for (int K = (int)TypeKind::Void; K <= (int)TypeKind::LongDouble; ++K) {
    TypeNode Node;
    Node.Kind = (TypeKind)K;
    Builtins[K] = addNode(std::move(Node));
  }
}

TypeId TypeTable::addNode(TypeNode Node) {
  Nodes.push_back(std::move(Node));
  return TypeId(static_cast<uint32_t>(Nodes.size() - 1));
}

TypeId TypeTable::getPointer(TypeId Pointee) {
  auto It = PointerCache.find(Pointee);
  if (It != PointerCache.end())
    return It->second;
  TypeNode Node;
  Node.Kind = TypeKind::Pointer;
  Node.Inner = Pointee;
  TypeId Ty = addNode(std::move(Node));
  PointerCache.emplace(Pointee, Ty);
  return Ty;
}

TypeId TypeTable::getArray(TypeId Element, uint64_t Count) {
  auto Key = std::make_pair(Element, Count);
  auto It = ArrayCache.find(Key);
  if (It != ArrayCache.end())
    return It->second;
  TypeNode Node;
  Node.Kind = TypeKind::Array;
  Node.Inner = Element;
  Node.ArraySize = Count;
  TypeId Ty = addNode(std::move(Node));
  ArrayCache.emplace(Key, Ty);
  return Ty;
}

TypeId TypeTable::getFunction(TypeId Ret, std::vector<TypeId> Params,
                              bool Variadic) {
  auto Key = std::make_tuple(Ret, Params, Variadic);
  auto It = FnCache.find(Key);
  if (It != FnCache.end())
    return It->second;
  TypeNode Node;
  Node.Kind = TypeKind::Function;
  Node.Inner = Ret;
  Node.Params = std::move(Params);
  Node.Variadic = Variadic;
  TypeId Ty = addNode(std::move(Node));
  FnCache.emplace(std::move(Key), Ty);
  return Ty;
}

TypeId TypeTable::getQualified(TypeId Base, uint8_t Quals) {
  if (Quals == QualNone)
    return Base;
  const TypeNode &BaseNode = node(Base);
  uint8_t Combined = BaseNode.Quals | Quals;
  if (Combined == BaseNode.Quals)
    return Base;
  auto Key = std::make_pair(unqualified(Base), Combined);
  auto It = QualCache.find(Key);
  if (It != QualCache.end())
    return It->second;
  TypeNode Node = node(Key.first);
  Node.Quals = Combined;
  TypeId Ty = addNode(std::move(Node));
  QualCache.emplace(Key, Ty);
  return Ty;
}

TypeId TypeTable::unqualified(TypeId Ty) const {
  const TypeNode &N = node(Ty);
  if (N.Quals == QualNone)
    return Ty;
  // Qualified nodes are copies of an unqualified node plus qualifier bits;
  // recover the original via the appropriate cache-free path: builtin
  // singletons, record/enum types, or structural re-lookup. The cheapest
  // safe approach is a linear scan of the caches' domains, but since every
  // qualified node was created through getQualified we can reconstruct by
  // kind instead.
  switch (N.Kind) {
  case TypeKind::Record:
    return RecordTypes[N.Record.index()];
  case TypeKind::Enum:
    return EnumTypes[N.Enum.index()];
  case TypeKind::Pointer: {
    auto It = const_cast<TypeTable *>(this)->PointerCache.find(N.Inner);
    assert(It != PointerCache.end() && "pointer base must be interned");
    return It->second;
  }
  case TypeKind::Array: {
    auto Key = std::make_pair(N.Inner, N.ArraySize);
    auto It = const_cast<TypeTable *>(this)->ArrayCache.find(Key);
    assert(It != ArrayCache.end() && "array base must be interned");
    return It->second;
  }
  case TypeKind::Function: {
    auto Key = std::make_tuple(N.Inner, N.Params, N.Variadic);
    auto It = const_cast<TypeTable *>(this)->FnCache.find(Key);
    assert(It != FnCache.end() && "function base must be interned");
    return It->second;
  }
  default:
    return Builtins[(int)N.Kind];
  }
}

TypeId TypeTable::canonical(TypeId Ty) const {
  TypeId Base = unqualified(Ty);
  const TypeNode &N = node(Base);
  // Rebuilding derived types requires interning, which is logically const
  // here (the table is append-only and canonicalization changes no
  // observable state of existing types).
  TypeTable &Self = const_cast<TypeTable &>(*this);
  switch (N.Kind) {
  case TypeKind::Pointer: {
    TypeId Inner = canonical(N.Inner);
    return Inner == N.Inner ? Base : Self.getPointer(Inner);
  }
  case TypeKind::Array: {
    TypeId Inner = canonical(N.Inner);
    return Inner == N.Inner ? Base : Self.getArray(Inner, N.ArraySize);
  }
  case TypeKind::Function: {
    TypeId Ret = canonical(N.Inner);
    std::vector<TypeId> Params;
    Params.reserve(N.Params.size());
    bool Same = Ret == N.Inner;
    for (TypeId P : N.Params) {
      Params.push_back(canonical(P));
      Same = Same && Params.back() == P;
    }
    return Same ? Base : Self.getFunction(Ret, std::move(Params), N.Variadic);
  }
  default:
    return Base;
  }
}

TypeId TypeTable::stripArrays(TypeId Ty) const {
  while (isArray(Ty))
    Ty = element(Ty);
  return Ty;
}

RecordId TypeTable::createRecord(bool IsUnion, Symbol Tag) {
  RecordDecl Decl;
  Decl.IsUnion = IsUnion;
  Decl.Tag = Tag;
  Records.push_back(std::move(Decl));
  RecordId Rec(static_cast<uint32_t>(Records.size() - 1));
  TypeNode Node;
  Node.Kind = TypeKind::Record;
  Node.Record = Rec;
  RecordTypes.push_back(addNode(std::move(Node)));
  return Rec;
}

TypeId TypeTable::getRecordType(RecordId Rec) {
  return RecordTypes[Rec.index()];
}

void TypeTable::completeRecord(RecordId Rec, std::vector<FieldDecl> Fields) {
  RecordDecl &Decl = Records[Rec.index()];
  assert(!Decl.IsComplete && "record completed twice");
  Decl.Fields = std::move(Fields);
  Decl.IsComplete = true;
}

EnumId TypeTable::createEnum(Symbol Tag) {
  EnumDecl Decl;
  Decl.Tag = Tag;
  Enums.push_back(std::move(Decl));
  EnumId En(static_cast<uint32_t>(Enums.size() - 1));
  TypeNode Node;
  Node.Kind = TypeKind::Enum;
  Node.Enum = En;
  EnumTypes.push_back(addNode(std::move(Node)));
  return En;
}

TypeId TypeTable::getEnumType(EnumId En) { return EnumTypes[En.index()]; }

TypeId TypeTable::typeOfPath(TypeId Root, const FieldPath &Path) const {
  TypeId Ty = Root;
  for (uint32_t Step : Path) {
    Ty = stripArrays(unqualified(Ty));
    assert(isRecord(Ty) && "field path step into non-record");
    const RecordDecl &Decl = record(node(Ty).Record);
    assert(Step < Decl.Fields.size() && "field path step out of range");
    Ty = Decl.Fields[Step].Ty;
  }
  return Ty;
}

std::string TypeTable::toString(TypeId Ty,
                                const StringInterner &Strings) const {
  const TypeNode &N = node(Ty);
  std::string Quals;
  if (N.Quals & QualConst)
    Quals += "const ";
  if (N.Quals & QualVolatile)
    Quals += "volatile ";
  switch (N.Kind) {
  case TypeKind::Void:
    return Quals + "void";
  case TypeKind::Char:
    return Quals + "char";
  case TypeKind::SChar:
    return Quals + "signed char";
  case TypeKind::UChar:
    return Quals + "unsigned char";
  case TypeKind::Short:
    return Quals + "short";
  case TypeKind::UShort:
    return Quals + "unsigned short";
  case TypeKind::Int:
    return Quals + "int";
  case TypeKind::UInt:
    return Quals + "unsigned int";
  case TypeKind::Long:
    return Quals + "long";
  case TypeKind::ULong:
    return Quals + "unsigned long";
  case TypeKind::LongLong:
    return Quals + "long long";
  case TypeKind::ULongLong:
    return Quals + "unsigned long long";
  case TypeKind::Float:
    return Quals + "float";
  case TypeKind::Double:
    return Quals + "double";
  case TypeKind::LongDouble:
    return Quals + "long double";
  case TypeKind::Enum: {
    const EnumDecl &Decl = enumDecl(N.Enum);
    std::string Tag = Decl.Tag.isValid()
                          ? std::string(Strings.text(Decl.Tag))
                          : "<anon>";
    return Quals + "enum " + Tag;
  }
  case TypeKind::Pointer:
    return Quals + toString(N.Inner, Strings) + " *";
  case TypeKind::Array:
    return Quals + toString(N.Inner, Strings) + " [" +
           std::to_string(N.ArraySize) + "]";
  case TypeKind::Record: {
    const RecordDecl &Decl = record(N.Record);
    std::string Tag =
        Decl.Tag.isValid() ? std::string(Strings.text(Decl.Tag)) : "<anon>";
    return Quals + (Decl.IsUnion ? "union " : "struct ") + Tag;
  }
  case TypeKind::Function: {
    std::string Out = toString(N.Inner, Strings) + " (";
    for (size_t I = 0; I < N.Params.size(); ++I) {
      if (I)
        Out += ", ";
      Out += toString(N.Params[I], Strings);
    }
    if (N.Variadic)
      Out += N.Params.empty() ? "..." : ", ...";
    Out += ")";
    return Quals + Out;
  }
  }
  return "<?>";
}
