//===--- Flatten.cpp ------------------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "ctypes/Flatten.h"

using namespace spa;

FlattenedType::FlattenedType(const TypeTable &Types,
                             const LayoutEngine &Layout, TypeId Root)
    : Types(Types) {
  struct Walker {
    const TypeTable &Types;
    const LayoutEngine &Layout;
    std::vector<LeafField> &Leaves;

    void walk(TypeId Ty, FieldPath &Path, uint64_t Offset, int ArrayDepth) {
      Ty = Types.unqualified(Ty);
      const TypeNode &N = Types.node(Ty);
      if (N.Kind == TypeKind::Array) {
        uint32_t GroupStart = static_cast<uint32_t>(Leaves.size());
        walk(N.Inner, Path, Offset, ArrayDepth + 1);
        if (ArrayDepth == 0) {
          uint32_t GroupEnd = static_cast<uint32_t>(Leaves.size());
          for (uint32_t I = GroupStart; I < GroupEnd; ++I) {
            Leaves[I].ArrayGroupBegin = GroupStart;
            Leaves[I].ArrayGroupEnd = GroupEnd;
          }
        }
        return;
      }
      if (N.Kind == TypeKind::Record) {
        const RecordDecl &Decl = Types.record(N.Record);
        if (!Decl.IsUnion && Decl.IsComplete && !Decl.Fields.empty()) {
          const RecordLayout &L = Layout.layout(N.Record);
          for (uint32_t I = 0; I < Decl.Fields.size(); ++I) {
            Path.push_back(I);
            walk(Decl.Fields[I].Ty, Path, Offset + L.FieldOffsets[I],
                 ArrayDepth);
            Path.pop_back();
          }
          return;
        }
        // Unions, incomplete records, and empty structs become one leaf.
      }
      LeafField Leaf;
      Leaf.Path = Path;
      Leaf.Ty = Ty;
      Leaf.Offset = Offset;
      Leaves.push_back(std::move(Leaf));
    }
  };

  FieldPath Path;
  Walker W{Types, Layout, Leaves};
  W.walk(Root, Path, 0, 0);
  assert(!Leaves.empty() && "every object type has at least one leaf");
}

std::optional<uint32_t>
FlattenedType::leafIndexOfPath(const FieldPath &Path) const {
  for (uint32_t I = 0; I < Leaves.size(); ++I)
    if (Leaves[I].Path == Path)
      return I;
  return std::nullopt;
}

uint32_t FlattenedType::normalizedLeaf(const FieldPath &Path) const {
  // The normalized form of a member path is reached by repeatedly stepping
  // into the first field while the designated member is a (complete,
  // non-union, non-empty) struct. Rather than recomputing types, exploit
  // the flattening order: the leaf for the normalized path is the first
  // leaf whose path has Path as a prefix, and if Path itself names a leaf,
  // that leaf.
  for (uint32_t I = 0; I < Leaves.size(); ++I) {
    const FieldPath &LP = Leaves[I].Path;
    if (LP.size() < Path.size())
      continue;
    if (std::equal(Path.begin(), Path.end(), LP.begin()))
      return I;
  }
  // A path that steps through a union (or an incomplete record) has no leaf
  // extension; it maps to the blob leaf that is a prefix of the path.
  for (uint32_t I = 0; I < Leaves.size(); ++I) {
    const FieldPath &LP = Leaves[I].Path;
    if (LP.size() > Path.size())
      continue;
    if (std::equal(LP.begin(), LP.end(), Path.begin()))
      return I;
  }
  assert(false && "path does not designate a member of this type");
  return 0;
}

std::vector<uint32_t> FlattenedType::fromLeafOnward(uint32_t Leaf) const {
  assert(Leaf < Leaves.size() && "leaf index out of range");
  uint32_t Start = Leaf;
  if (Leaves[Leaf].ArrayGroupBegin != UINT32_MAX)
    Start = std::min(Start, Leaves[Leaf].ArrayGroupBegin);
  std::vector<uint32_t> Out;
  Out.reserve(Leaves.size() - Start);
  for (uint32_t I = Start; I < Leaves.size(); ++I)
    Out.push_back(I);
  return Out;
}
