//===--- Layout.cpp -------------------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "ctypes/Layout.h"

using namespace spa;

TargetInfo TargetInfo::ilp32() {
  TargetInfo T;
  T.Name = "ilp32";
  return T;
}

TargetInfo TargetInfo::lp64() {
  TargetInfo T;
  T.Name = "lp64";
  T.LongSize = T.LongAlign = 8;
  T.PointerSize = T.PointerAlign = 8;
  T.LongDoubleSize = 16;
  T.LongDoubleAlign = 16;
  return T;
}

TargetInfo TargetInfo::padded32() {
  TargetInfo T;
  T.Name = "padded32";
  // Everything scalar is padded out to 8-byte slots. Still conforming: the
  // first field sits at offset 0 and compatible initial sequences line up.
  T.ShortSize = T.ShortAlign = 8;
  T.IntSize = T.IntAlign = 8;
  T.LongSize = T.LongAlign = 8;
  T.FloatSize = T.FloatAlign = 8;
  T.PointerSize = T.PointerAlign = 8;
  T.EnumSize = T.EnumAlign = 8;
  return T;
}

static uint64_t alignTo(uint64_t Value, uint64_t Align) {
  assert(Align != 0 && "zero alignment");
  return (Value + Align - 1) / Align * Align;
}

uint64_t LayoutEngine::sizeOf(TypeId Ty) const {
  const TypeNode &N = Types.node(Ty);
  switch (N.Kind) {
  case TypeKind::Void:
    return 1; // GNU-style: sizeof(void) == 1; used only defensively.
  case TypeKind::Char:
  case TypeKind::SChar:
  case TypeKind::UChar:
    return Target.CharSize;
  case TypeKind::Short:
  case TypeKind::UShort:
    return Target.ShortSize;
  case TypeKind::Int:
  case TypeKind::UInt:
    return Target.IntSize;
  case TypeKind::Long:
  case TypeKind::ULong:
    return Target.LongSize;
  case TypeKind::LongLong:
  case TypeKind::ULongLong:
    return Target.LongLongSize;
  case TypeKind::Float:
    return Target.FloatSize;
  case TypeKind::Double:
    return Target.DoubleSize;
  case TypeKind::LongDouble:
    return Target.LongDoubleSize;
  case TypeKind::Enum:
    return Target.EnumSize;
  case TypeKind::Pointer:
    return Target.PointerSize;
  case TypeKind::Array: {
    uint64_t Count = N.ArraySize == 0 ? 1 : N.ArraySize;
    return Count * sizeOf(N.Inner);
  }
  case TypeKind::Record:
    return layout(N.Record).Size;
  case TypeKind::Function:
    assert(false && "sizeof(function type)");
    return 1;
  }
  return 1;
}

uint64_t LayoutEngine::alignOf(TypeId Ty) const {
  const TypeNode &N = Types.node(Ty);
  switch (N.Kind) {
  case TypeKind::Void:
    return 1;
  case TypeKind::Char:
  case TypeKind::SChar:
  case TypeKind::UChar:
    return Target.CharAlign;
  case TypeKind::Short:
  case TypeKind::UShort:
    return Target.ShortAlign;
  case TypeKind::Int:
  case TypeKind::UInt:
    return Target.IntAlign;
  case TypeKind::Long:
  case TypeKind::ULong:
    return Target.LongAlign;
  case TypeKind::LongLong:
  case TypeKind::ULongLong:
    return Target.LongLongAlign;
  case TypeKind::Float:
    return Target.FloatAlign;
  case TypeKind::Double:
    return Target.DoubleAlign;
  case TypeKind::LongDouble:
    return Target.LongDoubleAlign;
  case TypeKind::Enum:
    return Target.EnumAlign;
  case TypeKind::Pointer:
    return Target.PointerAlign;
  case TypeKind::Array:
    return alignOf(N.Inner);
  case TypeKind::Record:
    return layout(N.Record).Align;
  case TypeKind::Function:
    return 1;
  }
  return 1;
}

const RecordLayout &LayoutEngine::layout(RecordId Rec) const {
  if (Rec.index() >= Cache.size()) {
    Cache.resize(Rec.index() + 1);
    CacheValid.resize(Rec.index() + 1, 0);
  }
  if (CacheValid[Rec.index()])
    return Cache[Rec.index()];

  const RecordDecl &Decl = Types.record(Rec);
  assert(Decl.IsComplete && "layout of incomplete record");
  RecordLayout L;
  if (Decl.IsUnion) {
    for (const FieldDecl &F : Decl.Fields) {
      L.FieldOffsets.push_back(0);
      L.Size = std::max(L.Size, sizeOf(F.Ty));
      L.Align = std::max(L.Align, alignOf(F.Ty));
    }
  } else {
    uint64_t Offset = 0;
    for (const FieldDecl &F : Decl.Fields) {
      uint64_t A = alignOf(F.Ty);
      Offset = alignTo(Offset, A);
      L.FieldOffsets.push_back(Offset);
      Offset += sizeOf(F.Ty);
      L.Align = std::max(L.Align, A);
    }
    L.Size = Offset;
  }
  if (L.Size == 0)
    L.Size = 1; // empty struct: give it one byte, as GCC does.
  L.Size = alignTo(L.Size, L.Align);

  Cache[Rec.index()] = std::move(L);
  CacheValid[Rec.index()] = 1;
  return Cache[Rec.index()];
}

uint64_t LayoutEngine::offsetOfPath(TypeId Root, const FieldPath &Path) const {
  uint64_t Offset = 0;
  TypeId Ty = Root;
  for (uint32_t Step : Path) {
    Ty = Types.stripArrays(Types.unqualified(Ty));
    assert(Types.isRecord(Ty) && "offsetOfPath step into non-record");
    RecordId Rec = Types.node(Ty).Record;
    Offset += layout(Rec).FieldOffsets[Step];
    Ty = Types.record(Rec).Fields[Step].Ty;
  }
  return Offset;
}

uint64_t LayoutEngine::canonicalOffset(TypeId Root, uint64_t Offset) const {
  TypeId Ty = Types.unqualified(Root);
  uint64_t Size = Types.isFunction(Ty) ? 1 : sizeOf(Ty);
  if (Offset >= Size)
    Offset = Size == 0 ? 0 : Size - 1;

  uint64_t Base = 0;
  for (;;) {
    Ty = Types.unqualified(Ty);
    const TypeNode &N = Types.node(Ty);
    if (N.Kind == TypeKind::Array) {
      uint64_t ElemSize = sizeOf(N.Inner);
      if (ElemSize == 0)
        return Base + Offset;
      Offset %= ElemSize; // map into the representative first element
      Ty = N.Inner;
      continue;
    }
    if (N.Kind == TypeKind::Record) {
      const RecordDecl &Decl = Types.record(N.Record);
      if (Decl.IsUnion || !Decl.IsComplete || Decl.Fields.empty())
        return Base + Offset; // stop at union boundaries / opaque records
      const RecordLayout &L = layout(N.Record);
      // Find the last field whose offset is <= Offset and which contains it.
      for (size_t I = Decl.Fields.size(); I-- > 0;) {
        uint64_t FO = L.FieldOffsets[I];
        if (FO > Offset)
          continue;
        uint64_t FS = sizeOf(Decl.Fields[I].Ty);
        if (Offset < FO + FS) {
          Base += FO;
          Offset -= FO;
          Ty = Decl.Fields[I].Ty;
          goto descended;
        }
        break; // offset lands in padding; keep it as-is
      }
      return Base + Offset;
    descended:
      continue;
    }
    // Scalar (or function): nothing further to canonicalize.
    return Base + Offset;
  }
}
