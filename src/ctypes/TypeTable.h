//===--- TypeTable.h - Type interning and queries --------------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns all type nodes for a translation unit. Builtins are singletons;
/// derived types (pointer/array/function and qualified variants) are
/// structurally interned; records and enums are nominal.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CTYPES_TYPETABLE_H
#define SPA_CTYPES_TYPETABLE_H

#include "ctypes/Type.h"

#include <map>
#include <string>
#include <tuple>

namespace spa {

/// Factory and registry for every type in a translation unit.
class TypeTable {
public:
  TypeTable();

  /// \name Builtin types (unqualified singletons).
  /// @{
  TypeId voidType() const { return Builtins[(int)TypeKind::Void]; }
  TypeId charType() const { return Builtins[(int)TypeKind::Char]; }
  TypeId scharType() const { return Builtins[(int)TypeKind::SChar]; }
  TypeId ucharType() const { return Builtins[(int)TypeKind::UChar]; }
  TypeId shortType() const { return Builtins[(int)TypeKind::Short]; }
  TypeId ushortType() const { return Builtins[(int)TypeKind::UShort]; }
  TypeId intType() const { return Builtins[(int)TypeKind::Int]; }
  TypeId uintType() const { return Builtins[(int)TypeKind::UInt]; }
  TypeId longType() const { return Builtins[(int)TypeKind::Long]; }
  TypeId ulongType() const { return Builtins[(int)TypeKind::ULong]; }
  TypeId longlongType() const { return Builtins[(int)TypeKind::LongLong]; }
  TypeId ulonglongType() const { return Builtins[(int)TypeKind::ULongLong]; }
  TypeId floatType() const { return Builtins[(int)TypeKind::Float]; }
  TypeId doubleType() const { return Builtins[(int)TypeKind::Double]; }
  TypeId longdoubleType() const { return Builtins[(int)TypeKind::LongDouble]; }
  /// @}

  /// Returns the pointer type "\p Pointee *".
  TypeId getPointer(TypeId Pointee);

  /// Returns the array type "\p Element [\p Count]". Count 0 = incomplete.
  TypeId getArray(TypeId Element, uint64_t Count);

  /// Returns the function type "Ret(Params...)".
  TypeId getFunction(TypeId Ret, std::vector<TypeId> Params, bool Variadic);

  /// Returns \p Base with qualifier bits \p Quals added.
  TypeId getQualified(TypeId Base, uint8_t Quals);

  /// Creates a new (incomplete) struct or union declaration.
  RecordId createRecord(bool IsUnion, Symbol Tag);

  /// Returns the unique record type for \p Rec.
  TypeId getRecordType(RecordId Rec);

  /// Completes \p Rec with its member list.
  void completeRecord(RecordId Rec, std::vector<FieldDecl> Fields);

  /// Creates a new enum declaration and returns it.
  EnumId createEnum(Symbol Tag);

  /// Returns the unique enum type for \p En.
  TypeId getEnumType(EnumId En);

  /// Marks \p En complete.
  void completeEnum(EnumId En) { Enums[En.index()].IsComplete = true; }

  /// \name Node accessors.
  /// @{
  const TypeNode &node(TypeId Ty) const { return Nodes[Ty.index()]; }
  const RecordDecl &record(RecordId Rec) const { return Records[Rec.index()]; }
  const EnumDecl &enumDecl(EnumId En) const { return Enums[En.index()]; }
  size_t numTypes() const { return Nodes.size(); }
  /// @}

  /// \name Convenience predicates and projections.
  /// @{
  TypeKind kind(TypeId Ty) const { return node(Ty).Kind; }
  bool isPointer(TypeId Ty) const { return kind(Ty) == TypeKind::Pointer; }
  bool isArray(TypeId Ty) const { return kind(Ty) == TypeKind::Array; }
  bool isFunction(TypeId Ty) const { return kind(Ty) == TypeKind::Function; }
  bool isRecord(TypeId Ty) const { return kind(Ty) == TypeKind::Record; }
  bool isStruct(TypeId Ty) const {
    return isRecord(Ty) && !record(node(Ty).Record).IsUnion;
  }
  bool isUnion(TypeId Ty) const {
    return isRecord(Ty) && record(node(Ty).Record).IsUnion;
  }
  bool isVoid(TypeId Ty) const { return kind(Ty) == TypeKind::Void; }
  bool isInteger(TypeId Ty) const {
    TypeKind K = kind(Ty);
    return K >= TypeKind::Char && K <= TypeKind::ULongLong;
  }
  bool isFloating(TypeId Ty) const {
    TypeKind K = kind(Ty);
    return K == TypeKind::Float || K == TypeKind::Double ||
           K == TypeKind::LongDouble;
  }
  bool isScalar(TypeId Ty) const {
    TypeKind K = kind(Ty);
    return isInteger(Ty) || isFloating(Ty) || K == TypeKind::Enum ||
           K == TypeKind::Pointer;
  }
  TypeId pointee(TypeId Ty) const {
    assert(isPointer(Ty) && "pointee() of non-pointer");
    return node(Ty).Inner;
  }
  TypeId element(TypeId Ty) const {
    assert(isArray(Ty) && "element() of non-array");
    return node(Ty).Inner;
  }
  /// Strips qualifier bits (returns the unqualified structural type).
  TypeId unqualified(TypeId Ty) const;
  /// Strips qualifiers at every level ("const char *const" -> "char *").
  /// Qualifiers never affect layout, so the analysis instances compare
  /// canonical types; treating differently-qualified types as matching is
  /// both safe and more precise (a qualification conversion is not a
  /// cast).
  TypeId canonical(TypeId Ty) const;
  /// Strips any number of array layers: T[2][3] -> T.
  TypeId stripArrays(TypeId Ty) const;
  /// @}

  /// Walks \p Path from \p Root (looking through arrays) and returns the
  /// member type it designates; returns Root itself for the empty path.
  TypeId typeOfPath(TypeId Root, const FieldPath &Path) const;

  /// Renders a human-readable spelling, e.g. "struct S *".
  std::string toString(TypeId Ty, const StringInterner &Strings) const;

private:
  TypeId addNode(TypeNode Node);

  std::vector<TypeNode> Nodes;
  std::vector<RecordDecl> Records;
  std::vector<EnumDecl> Enums;
  std::vector<TypeId> RecordTypes; ///< RecordId -> TypeId
  std::vector<TypeId> EnumTypes;   ///< EnumId -> TypeId
  TypeId Builtins[(int)TypeKind::LongDouble + 1];

  std::map<TypeId, TypeId> PointerCache;
  std::map<std::pair<TypeId, uint64_t>, TypeId> ArrayCache;
  std::map<std::tuple<TypeId, std::vector<TypeId>, bool>, TypeId> FnCache;
  std::map<std::pair<TypeId, uint8_t>, TypeId> QualCache;
};

} // namespace spa

#endif // SPA_CTYPES_TYPETABLE_H
