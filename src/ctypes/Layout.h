//===--- Layout.h - ABI layout engine --------------------------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes sizes, alignments, and field offsets for a configurable target
/// ABI. The paper's "Offsets" analysis instance is layout-specific; making
/// the ABI a runtime parameter lets tests demonstrate exactly the
/// portability hazard the paper describes (the same program analyzed under
/// two ABIs yields different offset-based results, while the portable
/// instances are ABI-independent).
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CTYPES_LAYOUT_H
#define SPA_CTYPES_LAYOUT_H

#include "ctypes/TypeTable.h"

#include <string>
#include <vector>

namespace spa {

/// Sizes and alignments of the scalar types for one target ABI.
struct TargetInfo {
  std::string Name;
  unsigned CharSize = 1, CharAlign = 1;
  unsigned ShortSize = 2, ShortAlign = 2;
  unsigned IntSize = 4, IntAlign = 4;
  unsigned LongSize = 4, LongAlign = 4;
  unsigned LongLongSize = 8, LongLongAlign = 8;
  unsigned FloatSize = 4, FloatAlign = 4;
  unsigned DoubleSize = 8, DoubleAlign = 8;
  unsigned LongDoubleSize = 8, LongDoubleAlign = 8;
  unsigned PointerSize = 4, PointerAlign = 4;
  unsigned EnumSize = 4, EnumAlign = 4;

  /// 32-bit SPARC/x86-style ABI (4-byte pointers), matching the paper's
  /// evaluation platform. This is the default.
  static TargetInfo ilp32();

  /// 64-bit ABI (8-byte pointers and longs).
  static TargetInfo lp64();

  /// A deliberately eccentric-but-conforming ABI (extra padding via larger
  /// alignments) used by tests to show that offset-based results are not
  /// portable while the field-name-based results are.
  static TargetInfo padded32();
};

/// Size and per-field offsets of one struct or union under one ABI.
struct RecordLayout {
  uint64_t Size = 0;
  uint64_t Align = 1;
  std::vector<uint64_t> FieldOffsets;
};

/// Answers sizeof/alignof/offsetof queries for one (TypeTable, TargetInfo)
/// pair. Layouts of records are computed on demand and cached.
class LayoutEngine {
public:
  LayoutEngine(const TypeTable &Types, TargetInfo Target)
      : Types(Types), Target(std::move(Target)) {}

  const TargetInfo &target() const { return Target; }

  /// sizeof(\p Ty). Incomplete arrays are sized as one element (the
  /// analysis collapses every array to a single representative element).
  /// Function types are not object types; asking for their size asserts.
  uint64_t sizeOf(TypeId Ty) const;

  /// alignof(\p Ty).
  uint64_t alignOf(TypeId Ty) const;

  /// Layout of record \p Rec, which must be complete.
  const RecordLayout &layout(RecordId Rec) const;

  /// offsetof: byte offset of \p Path within an object of type \p Root
  /// (array layers contribute offset 0 — the representative element).
  uint64_t offsetOfPath(TypeId Root, const FieldPath &Path) const;

  /// Canonicalizes \p Offset within an object of type \p Root so that any
  /// position inside an array maps into the array's first (representative)
  /// element, recursively (the paper's array adjustment for lookup and
  /// resolve). Offsets at or beyond sizeof(Root) are clamped to the last
  /// byte. Canonicalization stops at union boundaries.
  uint64_t canonicalOffset(TypeId Root, uint64_t Offset) const;

private:
  const TypeTable &Types;
  TargetInfo Target;
  mutable std::vector<RecordLayout> Cache;      ///< indexed by RecordId
  mutable std::vector<uint8_t> CacheValid;
};

} // namespace spa

#endif // SPA_CTYPES_LAYOUT_H
