//===--- Cfg.cpp ----------------------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"

#include <algorithm>
#include <cassert>
#include <cstddef>

using namespace spa;

const char *spa::cfgEdgeKindName(CfgEdgeKind Kind) {
  switch (Kind) {
  case CfgEdgeKind::Fall:
    return "fall";
  case CfgEdgeKind::BranchTrue:
    return "true";
  case CfgEdgeKind::BranchFalse:
    return "false";
  case CfgEdgeKind::LoopBack:
    return "back";
  case CfgEdgeKind::SwitchCase:
    return "case";
  case CfgEdgeKind::Jump:
    return "jump";
  }
  return "?";
}

uint32_t CfgBuilder::newBlock(SourceLoc Begin) {
  CfgBlock B;
  B.Begin = Begin;
  Cur.Blocks.push_back(std::move(B));
  return static_cast<uint32_t>(Cur.Blocks.size() - 1);
}

void CfgBuilder::edge(uint32_t From, uint32_t To, CfgEdgeKind Kind) {
  CfgEdge E{To, Kind};
  // The same structural edge can be announced twice (e.g. an empty then
  // and else both falling into the join from the condition block); keep
  // the successor list duplicate-free so the verifier can be strict.
  std::vector<CfgEdge> &Succs = Cur.Blocks[From].Succs;
  if (std::find(Succs.begin(), Succs.end(), E) != Succs.end())
    return;
  Succs.push_back(E);
  Cur.Blocks[To].Preds.push_back(From);
}

void CfgBuilder::jumpTo(uint32_t Target) {
  edge(CurBlock, Target, CfgEdgeKind::Jump);
  CurBlock = newBlock();
}

void CfgBuilder::beginFunction(uint32_t FuncIdx, SourceLoc BodyBegin) {
  assert(!InFunction && "nested function bodies are not a thing in C");
  Cur = FuncCfg();
  Cur.FuncIdx = FuncIdx;
  Cur.Entry = newBlock(BodyBegin);
  Cur.Exit = newBlock();
  CurBlock = Cur.Entry;
  Labels.clear();
  PendingLabels.clear();
  InFunction = true;
}

void CfgBuilder::endFunction(SourceLoc BodyEnd) {
  assert(InFunction);
  assert(Ifs.empty() && Loops.empty() && Switches.empty() &&
         "unbalanced construct frames at function end");
  edge(CurBlock, Cur.Exit, CfgEdgeKind::Fall);
  // A goto to a label the function never defines (the parser reports it,
  // but lowering continues): route the orphaned label block to the exit
  // so it is not a second successor-less block.
  for (const auto &[Name, Block] : PendingLabels)
    edge(Block, Cur.Exit, CfgEdgeKind::Jump);
  PendingLabels.clear();
  Cur.Blocks[Cur.Exit].Begin = BodyEnd;
  Cur.Blocks[Cur.Exit].End = BodyEnd;
  for (CfgBlock &B : Cur.Blocks)
    if (!B.End.isValid())
      B.End = BodyEnd;
  computeRpo(Cur);
  Out.Funcs.push_back(std::move(Cur));
  InFunction = false;
}

void CfgBuilder::finish(size_t TotalStmts, size_t TotalFuncs) {
  BlockOfStmt.resize(TotalStmts, -1);
  Out.BlockOfStmt = std::move(BlockOfStmt);
  BlockOfStmt.clear();
  Out.CfgOfFunc.assign(TotalFuncs, -1);
  for (size_t I = 0; I < Out.Funcs.size(); ++I) {
    uint32_t F = Out.Funcs[I].FuncIdx;
    if (F < TotalFuncs)
      Out.CfgOfFunc[F] = static_cast<int32_t>(I);
  }
}

void CfgBuilder::noteStmt(uint32_t StmtIdx, SourceLoc Loc) {
  if (BlockOfStmt.size() <= StmtIdx)
    BlockOfStmt.resize(StmtIdx + 1, -1);
  if (!InFunction)
    return; // global initializer: no CFG
  BlockOfStmt[StmtIdx] = static_cast<int32_t>(CurBlock);
  CfgBlock &B = Cur.Blocks[CurBlock];
  B.Stmts.push_back(StmtIdx);
  if (!B.Begin.isValid())
    B.Begin = Loc;
  B.End = Loc;
}

//===----------------------------------------------------------------------===//
// Structured constructs
//===----------------------------------------------------------------------===//

void CfgBuilder::beginIf(bool HasElse) {
  if (!InFunction)
    return;
  IfFrame F;
  F.HasElse = HasElse;
  uint32_t Then = newBlock();
  F.Else = HasElse ? newBlock() : 0;
  F.Join = newBlock();
  edge(CurBlock, Then, CfgEdgeKind::BranchTrue);
  edge(CurBlock, HasElse ? F.Else : F.Join, CfgEdgeKind::BranchFalse);
  Ifs.push_back(F);
  CurBlock = Then;
}

void CfgBuilder::beginElse() {
  if (!InFunction || Ifs.empty())
    return;
  IfFrame &F = Ifs.back();
  edge(CurBlock, F.Join, CfgEdgeKind::Fall);
  CurBlock = F.Else;
}

void CfgBuilder::endIf() {
  if (!InFunction || Ifs.empty())
    return;
  IfFrame F = Ifs.back();
  Ifs.pop_back();
  edge(CurBlock, F.Join, CfgEdgeKind::Fall);
  CurBlock = F.Join;
}

void CfgBuilder::beginWhileHeader() {
  if (!InFunction)
    return;
  LoopFrame F;
  F.Incoming = CurBlock;
  F.Header = newBlock();
  edge(F.Incoming, F.Header, CfgEdgeKind::Fall);
  Loops.push_back(F);
  CurBlock = F.Header;
}

void CfgBuilder::beginWhileBody() {
  if (!InFunction || Loops.empty())
    return;
  LoopFrame &F = Loops.back();
  uint32_t Body = newBlock();
  F.Exit = newBlock();
  edge(F.Header, Body, CfgEdgeKind::BranchTrue);
  edge(F.Header, F.Exit, CfgEdgeKind::BranchFalse);
  BreakTargets.push_back(F.Exit);
  ContinueTargets.push_back(F.Header);
  CurBlock = Body;
}

void CfgBuilder::endWhile() {
  if (!InFunction || Loops.empty())
    return;
  LoopFrame F = Loops.back();
  Loops.pop_back();
  edge(CurBlock, F.Header, CfgEdgeKind::LoopBack);
  BreakTargets.pop_back();
  ContinueTargets.pop_back();
  CurBlock = F.Exit;
}

void CfgBuilder::beginDoWhileLatch() {
  if (!InFunction)
    return;
  LoopFrame F;
  F.Incoming = CurBlock;
  F.Header = newBlock(); // the latch: holds the condition statements
  Loops.push_back(F);
  CurBlock = F.Header;
}

void CfgBuilder::beginDoWhileBody() {
  if (!InFunction || Loops.empty())
    return;
  LoopFrame &F = Loops.back();
  uint32_t Body = newBlock();
  F.Exit = newBlock();
  edge(F.Incoming, Body, CfgEdgeKind::Fall);
  edge(F.Header, Body, CfgEdgeKind::LoopBack);
  edge(F.Header, F.Exit, CfgEdgeKind::BranchFalse);
  BreakTargets.push_back(F.Exit);
  ContinueTargets.push_back(F.Header);
  CurBlock = Body;
}

void CfgBuilder::endDoWhile() {
  if (!InFunction || Loops.empty())
    return;
  LoopFrame F = Loops.back();
  Loops.pop_back();
  edge(CurBlock, F.Header, CfgEdgeKind::Fall);
  BreakTargets.pop_back();
  ContinueTargets.pop_back();
  CurBlock = F.Exit;
}

void CfgBuilder::beginForHeader() { beginWhileHeader(); }

void CfgBuilder::beginForStep() {
  if (!InFunction || Loops.empty())
    return;
  LoopFrame &F = Loops.back();
  F.Step = newBlock();
  CurBlock = F.Step;
}

void CfgBuilder::beginForBody() {
  if (!InFunction || Loops.empty())
    return;
  LoopFrame &F = Loops.back();
  uint32_t Body = newBlock();
  F.Exit = newBlock();
  edge(F.Header, Body, CfgEdgeKind::BranchTrue);
  edge(F.Header, F.Exit, CfgEdgeKind::BranchFalse);
  edge(F.Step, F.Header, CfgEdgeKind::LoopBack);
  BreakTargets.push_back(F.Exit);
  ContinueTargets.push_back(F.Step);
  CurBlock = Body;
}

void CfgBuilder::endFor() {
  if (!InFunction || Loops.empty())
    return;
  LoopFrame F = Loops.back();
  Loops.pop_back();
  edge(CurBlock, F.Step, CfgEdgeKind::Fall);
  BreakTargets.pop_back();
  ContinueTargets.pop_back();
  CurBlock = F.Exit;
}

void CfgBuilder::beginSwitch() {
  if (!InFunction)
    return;
  SwitchFrame F;
  F.Head = CurBlock;
  F.Exit = newBlock();
  Switches.push_back(F);
  BreakTargets.push_back(F.Exit);
  // Statements between the controlling expression and the first label are
  // unreachable; give them a block of their own.
  CurBlock = newBlock();
}

void CfgBuilder::caseLabel(bool IsDefault) {
  if (!InFunction || Switches.empty())
    return;
  SwitchFrame &F = Switches.back();
  if (IsDefault)
    F.SawDefault = true;
  uint32_t Label = newBlock();
  edge(F.Head, Label, CfgEdgeKind::SwitchCase);
  edge(CurBlock, Label, CfgEdgeKind::Fall); // fallthrough from above
  CurBlock = Label;
}

void CfgBuilder::endSwitch() {
  if (!InFunction || Switches.empty())
    return;
  SwitchFrame F = Switches.back();
  Switches.pop_back();
  BreakTargets.pop_back();
  edge(CurBlock, F.Exit, CfgEdgeKind::Fall);
  if (!F.SawDefault)
    edge(F.Head, F.Exit, CfgEdgeKind::BranchFalse); // no label matched
  CurBlock = F.Exit;
}

//===----------------------------------------------------------------------===//
// Unstructured transfers
//===----------------------------------------------------------------------===//

void CfgBuilder::breakStmt() {
  if (!InFunction || BreakTargets.empty())
    return;
  jumpTo(BreakTargets.back());
}

void CfgBuilder::continueStmt() {
  if (!InFunction || ContinueTargets.empty())
    return;
  jumpTo(ContinueTargets.back());
}

void CfgBuilder::returnStmt() {
  if (!InFunction)
    return;
  jumpTo(Cur.Exit);
}

uint32_t CfgBuilder::labelBlock(Symbol Label) {
  for (const auto &[Name, Block] : Labels)
    if (Name == Label)
      return Block;
  for (const auto &[Name, Block] : PendingLabels)
    if (Name == Label)
      return Block;
  uint32_t Block = newBlock();
  PendingLabels.emplace_back(Label, Block);
  return Block;
}

void CfgBuilder::gotoStmt(Symbol Label) {
  if (!InFunction || !Label.isValid())
    return;
  jumpTo(labelBlock(Label));
}

void CfgBuilder::labelStmt(Symbol Label) {
  if (!InFunction || !Label.isValid())
    return;
  uint32_t Block = labelBlock(Label);
  for (size_t I = 0; I < PendingLabels.size(); ++I)
    if (PendingLabels[I].first == Label) {
      Labels.push_back(PendingLabels[I]);
      PendingLabels.erase(PendingLabels.begin() +
                          static_cast<ptrdiff_t>(I));
      break;
    }
  if (std::none_of(Labels.begin(), Labels.end(),
                   [&](const auto &P) { return P.first == Label; }))
    Labels.emplace_back(Label, Block);
  edge(CurBlock, Block, CfgEdgeKind::Fall);
  CurBlock = Block;
}

//===----------------------------------------------------------------------===//
// Reverse postorder
//===----------------------------------------------------------------------===//

void CfgBuilder::computeRpo(FuncCfg &F) {
  size_t N = F.Blocks.size();
  F.RpoIndex.assign(N, -1);
  F.Rpo.clear();
  std::vector<uint8_t> State(N, 0); // 0 unvisited, 1 on stack, 2 done
  struct Frame {
    uint32_t Block;
    size_t Edge;
  };
  std::vector<Frame> Stack{{F.Entry, 0}};
  State[F.Entry] = 1;
  std::vector<uint32_t> Post;
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    const std::vector<CfgEdge> &Succs = F.Blocks[Top.Block].Succs;
    if (Top.Edge < Succs.size()) {
      uint32_t Next = Succs[Top.Edge++].To;
      if (State[Next] == 0) {
        State[Next] = 1;
        Stack.push_back({Next, 0});
      }
      continue;
    }
    Post.push_back(Top.Block);
    State[Top.Block] = 2;
    Stack.pop_back();
  }
  F.Rpo.assign(Post.rbegin(), Post.rend());
  for (size_t I = 0; I < F.Rpo.size(); ++I)
    F.RpoIndex[F.Rpo[I]] = static_cast<int32_t>(I);
}
