//===--- CfgVerifier.cpp --------------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "cfg/CfgVerifier.h"

#include "cfg/Cfg.h"

#include <algorithm>

using namespace spa;

namespace {

constexpr size_t MessageCap = 32;

class Verifier {
public:
  Verifier(const ProgramCfg &Cfg,
           const std::vector<std::vector<uint32_t>> &StmtsByFunc,
           const std::vector<char> &DefinedFunc, size_t TotalStmts)
      : Cfg(Cfg), StmtsByFunc(StmtsByFunc), DefinedFunc(DefinedFunc),
        TotalStmts(TotalStmts) {}

  CfgVerifyResult run() {
    checkProgramMaps();
    for (const FuncCfg &F : Cfg.Funcs)
      checkFunction(F);
    return std::move(R);
  }

private:
  void check(bool Ok, const std::string &Message) {
    ++R.ChecksRun;
    if (Ok)
      return;
    ++R.Violations;
    if (R.Messages.size() < MessageCap)
      R.Messages.push_back(Message);
  }

  static std::string funcTag(const FuncCfg &F) {
    return "function #" + std::to_string(F.FuncIdx);
  }

  void checkProgramMaps() {
    check(Cfg.BlockOfStmt.size() == TotalStmts,
          "BlockOfStmt covers " + std::to_string(Cfg.BlockOfStmt.size()) +
              " statements, program has " + std::to_string(TotalStmts));
    check(Cfg.CfgOfFunc.size() == StmtsByFunc.size(),
          "CfgOfFunc covers " + std::to_string(Cfg.CfgOfFunc.size()) +
              " functions, program has " +
              std::to_string(StmtsByFunc.size()));
    for (size_t F = 0; F < Cfg.CfgOfFunc.size(); ++F) {
      int32_t Idx = Cfg.CfgOfFunc[F];
      bool Defined = F < DefinedFunc.size() && DefinedFunc[F];
      check(Idx < 0 ? !Defined : Defined,
            "function #" + std::to_string(F) +
                (Defined ? " is defined but has no CFG"
                         : " is undefined but has a CFG"));
      if (Idx < 0)
        continue;
      bool InRange = static_cast<size_t>(Idx) < Cfg.Funcs.size();
      check(InRange, "CfgOfFunc[" + std::to_string(F) +
                         "] is out of range: " + std::to_string(Idx));
      if (InRange)
        check(Cfg.Funcs[static_cast<size_t>(Idx)].FuncIdx == F,
              "CfgOfFunc[" + std::to_string(F) +
                  "] names a CFG built for function #" +
                  std::to_string(Cfg.Funcs[static_cast<size_t>(Idx)].FuncIdx));
    }
  }

  void checkFunction(const FuncCfg &F) {
    size_t N = F.Blocks.size();
    check(F.Entry < N, funcTag(F) + ": entry block out of range");
    check(F.Exit < N, funcTag(F) + ": exit block out of range");
    if (F.Entry >= N || F.Exit >= N)
      return;
    check(F.Entry != F.Exit, funcTag(F) + ": entry and exit coincide");
    check(F.Blocks[F.Entry].Preds.empty(),
          funcTag(F) + ": entry block has predecessors");
    check(F.Blocks[F.Exit].Succs.empty(),
          funcTag(F) + ": exit block has successors");
    check(F.Blocks[F.Exit].Stmts.empty(),
          funcTag(F) + ": exit block holds statements");

    // Edge sanity and the pred/succ mirror.
    for (uint32_t B = 0; B < N; ++B) {
      const CfgBlock &Block = F.Blocks[B];
      for (const CfgEdge &E : Block.Succs) {
        check(E.To < N, funcTag(F) + ": block " + std::to_string(B) +
                            " has an edge to out-of-range block " +
                            std::to_string(E.To));
        if (E.To >= N)
          continue;
        const std::vector<uint32_t> &Preds = F.Blocks[E.To].Preds;
        check(std::count(Preds.begin(), Preds.end(), B) == 1,
              funcTag(F) + ": edge " + std::to_string(B) + " -> " +
                  std::to_string(E.To) +
                  " is not mirrored exactly once in the target's preds");
      }
      std::vector<CfgEdge> Sorted = Block.Succs;
      std::sort(Sorted.begin(), Sorted.end(), [](CfgEdge A, CfgEdge B2) {
        return std::make_pair(A.To, static_cast<int>(A.Kind)) <
               std::make_pair(B2.To, static_cast<int>(B2.Kind));
      });
      check(std::adjacent_find(Sorted.begin(), Sorted.end()) == Sorted.end(),
            funcTag(F) + ": block " + std::to_string(B) +
                " repeats a successor edge");
      if (B != F.Exit)
        check(!Block.Succs.empty(),
              funcTag(F) + ": non-exit block " + std::to_string(B) +
                  " has no successors");
      for (uint32_t P : Block.Preds) {
        bool Mirrored =
            P < N && std::any_of(F.Blocks[P].Succs.begin(),
                                 F.Blocks[P].Succs.end(),
                                 [&](CfgEdge E) { return E.To == B; });
        check(Mirrored, funcTag(F) + ": block " + std::to_string(B) +
                            " lists predecessor " + std::to_string(P) +
                            " without a matching successor edge");
      }
    }

    checkStmtPartition(F);
    checkRpo(F);
  }

  /// Every statement the function owns appears in exactly one block, in
  /// emission order within the block, and the program-level BlockOfStmt
  /// map agrees.
  void checkStmtPartition(const FuncCfg &F) {
    std::vector<uint32_t> InBlocks;
    for (uint32_t B = 0; B < F.Blocks.size(); ++B) {
      const std::vector<uint32_t> &Stmts = F.Blocks[B].Stmts;
      check(std::is_sorted(Stmts.begin(), Stmts.end()) &&
                std::adjacent_find(Stmts.begin(), Stmts.end()) ==
                    Stmts.end(),
            funcTag(F) + ": block " + std::to_string(B) +
                " statements are not strictly ascending");
      for (uint32_t S : Stmts) {
        InBlocks.push_back(S);
        check(S < Cfg.BlockOfStmt.size() &&
                  Cfg.BlockOfStmt[S] == static_cast<int32_t>(B),
              funcTag(F) + ": statement " + std::to_string(S) +
                  " in block " + std::to_string(B) +
                  " disagrees with BlockOfStmt");
      }
    }
    std::sort(InBlocks.begin(), InBlocks.end());
    std::vector<uint32_t> Owned;
    if (F.FuncIdx < StmtsByFunc.size())
      Owned = StmtsByFunc[F.FuncIdx];
    std::sort(Owned.begin(), Owned.end());
    check(InBlocks == Owned,
          funcTag(F) + ": blocks hold " + std::to_string(InBlocks.size()) +
              " statements, the function owns " +
              std::to_string(Owned.size()) +
              " (every statement must be in exactly one block)");
  }

  /// The reverse postorder lists exactly the blocks reachable from the
  /// entry, entry first, and RpoIndex is its inverse.
  void checkRpo(const FuncCfg &F) {
    size_t N = F.Blocks.size();
    std::vector<char> Reach(N, 0);
    std::vector<uint32_t> Work{F.Entry};
    Reach[F.Entry] = 1;
    while (!Work.empty()) {
      uint32_t B = Work.back();
      Work.pop_back();
      for (const CfgEdge &E : F.Blocks[B].Succs)
        if (E.To < N && !Reach[E.To]) {
          Reach[E.To] = 1;
          Work.push_back(E.To);
        }
    }
    size_t ReachCount =
        static_cast<size_t>(std::count(Reach.begin(), Reach.end(), 1));
    check(F.Rpo.size() == ReachCount,
          funcTag(F) + ": RPO lists " + std::to_string(F.Rpo.size()) +
              " blocks, " + std::to_string(ReachCount) + " are reachable");
    check(!F.Rpo.empty() && F.Rpo.front() == F.Entry,
          funcTag(F) + ": RPO does not start at the entry block");
    check(F.RpoIndex.size() == N,
          funcTag(F) + ": RpoIndex size disagrees with the block count");
    std::vector<char> Seen(N, 0);
    for (size_t I = 0; I < F.Rpo.size(); ++I) {
      uint32_t B = F.Rpo[I];
      bool Ok = B < N && !Seen[B] && Reach[B] &&
                F.RpoIndex.size() == N &&
                F.RpoIndex[B] == static_cast<int32_t>(I);
      if (B < N)
        Seen[B] = 1;
      check(Ok, funcTag(F) + ": RPO entry " + std::to_string(I) +
                    " (block " + std::to_string(B) +
                    ") is duplicated, unreachable, or out of sync with "
                    "RpoIndex");
    }
    for (uint32_t B = 0; B < N; ++B)
      if (!Reach[B] && B < F.RpoIndex.size())
        check(F.RpoIndex[B] == -1,
              funcTag(F) + ": unreachable block " + std::to_string(B) +
                  " carries an RPO index");
  }

  const ProgramCfg &Cfg;
  const std::vector<std::vector<uint32_t>> &StmtsByFunc;
  const std::vector<char> &DefinedFunc;
  size_t TotalStmts;
  CfgVerifyResult R;
};

} // namespace

CfgVerifyResult
spa::verifyCfg(const ProgramCfg &Cfg,
               const std::vector<std::vector<uint32_t>> &StmtsByFunc,
               const std::vector<char> &DefinedFunc, size_t TotalStmts) {
  return Verifier(Cfg, StmtsByFunc, DefinedFunc, TotalStmts).run();
}
