//===--- Cfg.h - Intraprocedural control-flow graph ------------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An intraprocedural control-flow graph over the normalized statement
/// stream. The points-to solve itself is flow-insensitive (the paper closes
/// over a bag of assignments), so the CFG exists purely for the post-solve
/// flow passes (src/flow/): basic blocks partition each defined function's
/// statements, edges follow the source's branch/loop/switch structure, and
/// a reverse-postorder index gives the dataflow a good visit order.
///
/// The graph is built by the normalizer as it lowers the AST — blocks hold
/// indices into NormProgram::Stmts, so no statement is ever duplicated or
/// reordered. Statement emission order is unchanged from the straight-line
/// lowering (e.g. a for statement still emits init, cond, step, body in
/// that order); the CFG records which *block* each statement belongs to and
/// lets the edges express the execution order instead.
///
/// This header deliberately depends only on src/support: the norm library
/// embeds a ProgramCfg in every NormProgram, so depending back on norm
/// types would be circular. Functions and statements are referred to by
/// their dense indices.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CFG_CFG_H
#define SPA_CFG_CFG_H

#include "support/SourceLoc.h"
#include "support/StringInterner.h"

#include <cstdint>
#include <vector>

namespace spa {

/// Why an edge exists; purely descriptive (the dataflow treats all kinds
/// alike) but pinned by the verifier and shown in the --cfg dump.
enum class CfgEdgeKind : uint8_t {
  Fall,        ///< sequential fallthrough into the next block
  BranchTrue,  ///< condition held (if-then, loop entry)
  BranchFalse, ///< condition failed (else / loop or switch exit)
  LoopBack,    ///< back edge to a loop header or latch
  SwitchCase,  ///< switch head to one case/default label
  Jump,        ///< break, continue, goto, or return
};

/// Renders an edge kind for dumps and verifier messages.
const char *cfgEdgeKindName(CfgEdgeKind Kind);

/// One outgoing edge.
struct CfgEdge {
  uint32_t To = 0;
  CfgEdgeKind Kind = CfgEdgeKind::Fall;

  friend bool operator==(CfgEdge A, CfgEdge B) {
    return A.To == B.To && A.Kind == B.Kind;
  }
};

/// One basic block: a run of consecutively emitted statements with no
/// internal control transfer.
struct CfgBlock {
  /// Indices into NormProgram::Stmts, strictly ascending. The entry and
  /// exit blocks (and blocks synthesized after a jump) may be empty.
  std::vector<uint32_t> Stmts;
  std::vector<CfgEdge> Succs;
  std::vector<uint32_t> Preds;
  /// Source range the block covers; End comes from the front end's
  /// Stmt::EndLoc (closing brace / terminating token) when available.
  SourceLoc Begin;
  SourceLoc End;
};

/// The CFG of one defined function.
struct FuncCfg {
  /// Index of the function in NormProgram::Funcs.
  uint32_t FuncIdx = UINT32_MAX;
  /// The unique entry block (no predecessors).
  uint32_t Entry = 0;
  /// The unique exit block (no statements, no successors). Every return
  /// statement edges here, as does the fall off the end of the body.
  uint32_t Exit = 0;
  std::vector<CfgBlock> Blocks;
  /// Reverse postorder over the blocks reachable from Entry (Entry first).
  std::vector<uint32_t> Rpo;
  /// Position of each block in Rpo; -1 for blocks unreachable from Entry
  /// (dead code after a jump; the dataflow treats them as never executed).
  std::vector<int32_t> RpoIndex;

  size_t edgeCount() const {
    size_t N = 0;
    for (const CfgBlock &B : Blocks)
      N += B.Succs.size();
    return N;
  }
};

/// CFGs for a whole program, one per defined function.
struct ProgramCfg {
  std::vector<FuncCfg> Funcs;
  /// Function index -> index into Funcs; -1 for undefined functions.
  std::vector<int32_t> CfgOfFunc;
  /// Statement index -> block id inside its function's FuncCfg; -1 for
  /// global-initializer statements (which have no CFG).
  std::vector<int32_t> BlockOfStmt;

  bool empty() const { return Funcs.empty(); }

  /// CFG of function \p FuncIdx, or null if it has none.
  const FuncCfg *cfgFor(uint32_t FuncIdx) const {
    if (FuncIdx >= CfgOfFunc.size() || CfgOfFunc[FuncIdx] < 0)
      return nullptr;
    return &Funcs[static_cast<size_t>(CfgOfFunc[FuncIdx])];
  }

  size_t totalBlocks() const {
    size_t N = 0;
    for (const FuncCfg &F : Funcs)
      N += F.Blocks.size();
    return N;
  }
  size_t totalEdges() const {
    size_t N = 0;
    for (const FuncCfg &F : Funcs)
      N += F.edgeCount();
    return N;
  }
};

/// Incremental CFG constructor driven by the normalizer's AST walk. The
/// builder mirrors the source's block structure: the normalizer announces
/// each construct (beginIf .. endIf, beginWhileHeader .. endWhile, ...)
/// around the statement emission it already performs, and the builder
/// assigns every emitted statement to the current block and wires the
/// edges. Break/continue targets, the enclosing switch, and goto labels
/// are tracked on internal stacks so the normalizer stays a plain
/// recursive walk.
class CfgBuilder {
public:
  explicit CfgBuilder(ProgramCfg &Out) : Out(Out) {}

  /// \name Function boundaries.
  /// @{
  void beginFunction(uint32_t FuncIdx, SourceLoc BodyBegin);
  /// Finishes the current function: falls through to the exit block,
  /// resolves forward gotos, and computes the reverse postorder.
  /// \p BodyEnd is the body's closing location (Stmt::EndLoc).
  void endFunction(SourceLoc BodyEnd);
  /// Called once after all functions, with the final statement and
  /// function counts, to size the program-level maps.
  void finish(size_t TotalStmts, size_t TotalFuncs);
  /// @}

  /// Assigns statement \p StmtIdx (just appended to NormProgram::Stmts)
  /// to the current block. Outside a function (global initializers) the
  /// statement is recorded as CFG-less.
  void noteStmt(uint32_t StmtIdx, SourceLoc Loc);

  /// \name Structured control flow. Call order follows the normalizer's
  /// emission order for each construct.
  /// @{
  /// After the condition's statements: opens the then block.
  void beginIf(bool HasElse);
  /// After the then arm: closes it into the join, opens the else block.
  void beginElse();
  /// Closes the construct; the current block becomes the join.
  void endIf();

  /// Before the condition: opens the loop header (condition lives there).
  void beginWhileHeader();
  /// After the condition: opens the body; header branches body/exit.
  void beginWhileBody();
  /// After the body: back edge to the header; current becomes the exit.
  void endWhile();

  /// Before the condition: opens the latch (do-while conditions are
  /// emitted before the body by the normalizer, but execute after it).
  void beginDoWhileLatch();
  /// After the condition: opens the body; entry falls into the body, the
  /// latch loops back to it or exits.
  void beginDoWhileBody();
  /// After the body: falls into the latch; current becomes the exit.
  void endDoWhile();

  /// After init, before the condition: opens the for header.
  void beginForHeader();
  /// After the condition: opens the step block (emitted before the body).
  void beginForStep();
  /// After the step: opens the body; continue targets the step block.
  void beginForBody();
  /// After the body: falls into the step; current becomes the exit.
  void endFor();

  /// After the controlling expression: the current block becomes the
  /// switch head; statements before the first case label are unreachable.
  void beginSwitch();
  /// A case or default label: new block, dispatch edge from the head,
  /// fallthrough edge from the preceding statement run. No-op outside a
  /// switch (the parser tolerates stray labels; so does the builder).
  void caseLabel(bool IsDefault);
  /// Closes the switch; without a default the head may skip to the exit.
  void endSwitch();
  /// @}

  /// \name Unstructured transfers.
  /// @{
  void breakStmt();
  void continueStmt();
  void returnStmt();
  void gotoStmt(Symbol Label);
  void labelStmt(Symbol Label);
  /// @}

private:
  uint32_t newBlock(SourceLoc Begin = SourceLoc());
  void edge(uint32_t From, uint32_t To, CfgEdgeKind Kind);
  /// Ends the current block with a jump to \p Target and opens a fresh
  /// (unreachable until labeled) block for any trailing statements.
  void jumpTo(uint32_t Target);
  /// Block a goto/label name refers to, created on first mention.
  uint32_t labelBlock(Symbol Label);
  void computeRpo(FuncCfg &F);

  struct IfFrame {
    uint32_t Join = 0;
    uint32_t Else = 0;
    bool HasElse = false;
  };
  struct LoopFrame {
    uint32_t Incoming = 0; ///< block before the construct
    uint32_t Header = 0;   ///< condition block (latch for do-while)
    uint32_t Step = 0;     ///< for-step block; 0 when unused
    uint32_t Exit = 0;
  };
  struct SwitchFrame {
    uint32_t Head = 0;
    uint32_t Exit = 0;
    bool SawDefault = false;
  };

  ProgramCfg &Out;
  FuncCfg Cur;
  bool InFunction = false;
  uint32_t CurBlock = 0;
  std::vector<IfFrame> Ifs;
  std::vector<LoopFrame> Loops;
  std::vector<SwitchFrame> Switches;
  std::vector<uint32_t> BreakTargets;
  std::vector<uint32_t> ContinueTargets;
  /// Goto labels of the current function: name -> block id.
  std::vector<std::pair<Symbol, uint32_t>> Labels;
  /// Labels mentioned by a goto but not (yet) defined.
  std::vector<std::pair<Symbol, uint32_t>> PendingLabels;
  /// Statement -> block id within its function (or -1 for globals), keyed
  /// by global statement index; moved into Out by finish().
  std::vector<int32_t> BlockOfStmt;
};

} // namespace spa

#endif // SPA_CFG_CFG_H
