//===--- CfgVerifier.h - CFG well-formedness lint --------------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A well-formedness verifier for the intraprocedural CFG, in the
/// --verify-ir style: the dataflow passes assume the invariants the
/// builder establishes — every statement of a defined function sits in
/// exactly one block, predecessor and successor lists mirror each other,
/// the function has a single entry and a single exit, and the reverse
/// postorder covers exactly the reachable blocks. This pass re-checks
/// those invariants explicitly, so a broken producer (or a corrupted
/// graph in the mutation self-tests) is caught before the flow pass
/// silently mis-refines.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CFG_CFGVERIFIER_H
#define SPA_CFG_CFGVERIFIER_H

#include <cstdint>
#include <string>
#include <vector>

namespace spa {

struct ProgramCfg;

/// Outcome of one CFG verification pass.
struct CfgVerifyResult {
  /// Individual invariant checks evaluated.
  uint64_t ChecksRun = 0;
  /// Checks that failed.
  uint64_t Violations = 0;
  /// Human-readable reports for the first violations (capped).
  std::vector<std::string> Messages;

  bool ok() const { return Violations == 0; }
};

/// Verifies \p Cfg against the program shape it was built for.
/// \p StmtsByFunc lists, per function index, the statement indices that
/// function owns in emission order (NormProgram::stmtOrder's ByFunc);
/// \p DefinedFunc marks which functions are defined (and must therefore
/// have a CFG); \p TotalStmts is NormProgram::Stmts.size().
CfgVerifyResult
verifyCfg(const ProgramCfg &Cfg,
          const std::vector<std::vector<uint32_t>> &StmtsByFunc,
          const std::vector<char> &DefinedFunc, size_t TotalStmts);

} // namespace spa

#endif // SPA_CFG_CFGVERIFIER_H
