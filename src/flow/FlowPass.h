//===--- FlowPass.h - Invalidation-aware flow refinement -------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An ordering-aware invalidation analysis layered over the unchanged
/// flow-insensitive fixpoint (the shape of dg's PointsToWithInvalidate /
/// InvalidatedAnalysis). The paper's analysis has no notion of statement
/// order, so the use-after-free checker treats every free as poisoning
/// all aliases of an object forever — a dereference *before* the free is
/// reported just the same. This pass walks each function's normalized
/// statements in emission order after the solve, tracking the set of
/// objects that may already be deallocated when control reaches each
/// dereference site:
///
///  * free(p) invalidates exactly the heap objects in pts(p) that the
///    solve marked freed (the same Dealloc library-summary semantics);
///  * realloc kills the old block and revives the new one (the
///    normalizer's AddrOf of the fresh heap pseudo-variable precedes the
///    residual deallocating call, so this falls out of the walk);
///  * calls to defined functions propagate invalidation both ways:
///    a bottom-up SCC pass over the fixpoint call graph computes a
///    may-free summary per function, and a top-down pass seeds each
///    callee's entry state with the caller's state at the call;
///  * re-executing an allocation site (an AddrOf of a heap
///    pseudo-variable) revives that object — unless its address escapes
///    to unknown external code, in which case it conservatively stays
///    invalidated;
///  * functions reachable only from outside the program (no main,
///    unreachable from main, or passed as a callback to an external)
///    start maximally invalidated, so the refinement degrades to the
///    flow-insensitive answer exactly where ordering is unknown.
///
/// The result is recorded per dereference site into the solver's
/// SiteEvents (Solver::setSiteFlowVerdict); the use-after-free checker
/// consults the verdict instead of the global freedObjects() mark. The
/// points-to fixpoint itself is never changed — every engine, model,
/// points-to representation, and --certify result is untouched — and the
/// verdicts only ever *suppress* reports the flow-insensitive mark also
/// produced, never invent new ones. auditFlowRefinement re-checks that
/// invariant independently (--flow-audit).
///
/// The walk is a single linear pass per function: branches and loop
/// back-edges are not modeled, so within one function the pass sees the
/// emission order as *the* order. That direction is safe (a free earlier
/// in the walk can only add invalidations), and docs/CHECKERS.md spells
/// out the accepted imprecision.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_FLOW_FLOWPASS_H
#define SPA_FLOW_FLOWPASS_H

#include "pta/Solver.h"

#include <string>
#include <vector>

namespace spa {

/// Counters of one invalidation-pass run (telemetry "flow.*" keys).
struct FlowResult {
  /// Distinct objects that were invalid at some point of some walk.
  uint64_t ObjectsInvalidated = 0;
  /// Dereference sites whose verdict excludes at least one freed target —
  /// the sites where the refinement is strictly more precise than the
  /// flow-insensitive mark.
  uint64_t SitesRefined = 0;
  /// Sites where the flow-insensitive mark produces a use-after-free
  /// report and the refined verdict produces none.
  uint64_t ReportsSuppressed = 0;
  /// Wall-clock seconds of the pass.
  double Seconds = 0;
};

/// Runs the invalidation pass over \p S, which must have been solved to a
/// converged fixpoint. Verdicts are recorded into the solver's site
/// events; re-running solve() clears them.
FlowResult runInvalidationPass(Solver &S);

/// Result of one auditFlowRefinement call.
struct FlowAuditResult {
  uint64_t SitesChecked = 0;
  uint64_t Violations = 0;
  std::vector<std::string> Messages;
  bool ok() const { return Violations == 0; }
};

/// Independently re-checks the refinement invariant over the recorded
/// verdicts: every object a verdict invalidates must carry the solve's
/// flow-insensitive freed mark and be among the site's dereference
/// targets — so a refined verdict can only suppress reports the baseline
/// also produced, never add one.
FlowAuditResult auditFlowRefinement(Solver &S);

} // namespace spa

#endif // SPA_FLOW_FLOWPASS_H
