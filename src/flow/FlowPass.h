//===--- FlowPass.h - Invalidation-aware flow refinement -------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An ordering-aware invalidation analysis layered over the unchanged
/// flow-insensitive fixpoint (the shape of dg's PointsToWithInvalidate /
/// InvalidatedAnalysis). The paper's analysis has no notion of statement
/// order, so the use-after-free checker treats every free as poisoning
/// all aliases of an object forever — a dereference *before* the free is
/// reported just the same. This pass runs after the solve and tracks the
/// set of objects that may already be deallocated when control reaches
/// each dereference site:
///
///  * free(p) invalidates exactly the heap objects in pts(p) that the
///    solve marked freed (the same Dealloc library-summary semantics);
///  * realloc kills the old block and revives the new one (the
///    normalizer's AddrOf of the fresh heap pseudo-variable precedes the
///    residual deallocating call, so this falls out of the walk);
///  * calls to defined functions propagate invalidation both ways:
///    summaries per function flow bottom-up over the fixpoint call graph,
///    and a top-down pass seeds each callee's entry state with the
///    caller's state at the call;
///  * re-executing an allocation site (an AddrOf of a heap
///    pseudo-variable) revives that object — unless its address escapes
///    to unknown external code, in which case it conservatively stays
///    invalidated;
///  * functions reachable only from outside the program (no main,
///    unreachable from main, or passed as a callback to an external)
///    start maximally invalidated, so the refinement degrades to the
///    flow-insensitive answer exactly where ordering is unknown.
///
/// The pass comes in two flavours (FlowMode):
///
///  * Invalidate — a single linear walk per function in statement
///    emission order. Branches and loop back-edges are not modeled; the
///    emission order is *the* order. Callee effects are a single
///    may-free set (everything the callee may transitively free).
///
///  * Cfg — a forward worklist dataflow over the intraprocedural CFG
///    the normalizer builds (src/cfg/). The may-freed state joins by
///    union at block entries, blocks unreachable from the function entry
///    contribute nothing (dead code never executes), and loop bodies
///    iterate to a bounded fixpoint — so a free on one branch arm no
///    longer poisons the other arm, and a free inside a loop correctly
///    reaches uses on the next iteration. Callee effects are *exit
///    summaries*: per defined function, the objects that may still be
///    freed when it returns (ExitMayFree) and the objects it revives on
///    every path to the return (ExitMustRevive — a must-dataflow), so a
///    callee that re-executes an allocation site cleans the caller's
///    view of that block. Functions in a call-graph cycle fall back to
///    the Invalidate-style may-free summary with no revival.
///
/// Both flavours record their result per dereference site into the
/// solver's SiteEvents (Solver::setSiteFlowVerdict); the use-after-free
/// checker consults the verdict instead of the global freedObjects()
/// mark. The points-to fixpoint itself is never changed — every engine,
/// model, points-to representation, and --certify result is untouched —
/// and the verdicts only ever *suppress* reports the flow-insensitive
/// mark also produced, never invent new ones, with one deliberate
/// exception: the Cfg flavour's loop modeling can *restore* a report the
/// linear walk wrongly suppressed (a free on the back edge reaching the
/// next iteration's use), which is a strict precision win over
/// Invalidate, not over the baseline. auditFlowRefinement re-checks the
/// suppress-only invariant (and the CFG's well-formedness) independently
/// (--flow-audit).
///
//===----------------------------------------------------------------------===//

#ifndef SPA_FLOW_FLOWPASS_H
#define SPA_FLOW_FLOWPASS_H

#include "pta/Solver.h"

#include <string>
#include <vector>

namespace spa {

/// Which flavour of the invalidation pass runs (--flow=...).
enum class FlowMode : uint8_t {
  Invalidate, ///< linear statement-order walk per function
  Cfg,        ///< branch-sensitive dataflow over the intraprocedural CFG
};

/// Counters of one invalidation-pass run (telemetry "flow.*" keys).
struct FlowResult {
  /// Distinct objects that were invalid at some point of some walk.
  uint64_t ObjectsInvalidated = 0;
  /// Dereference sites whose verdict excludes at least one freed target —
  /// the sites where the refinement is strictly more precise than the
  /// flow-insensitive mark.
  uint64_t SitesRefined = 0;
  /// Sites where the flow-insensitive mark produces a use-after-free
  /// report and the refined verdict produces none.
  uint64_t ReportsSuppressed = 0;
  /// Cfg mode: basic blocks / edges of the program's CFGs.
  uint64_t CfgBlocks = 0;
  uint64_t CfgEdges = 0;
  /// Cfg mode: block-entry joins evaluated at blocks with two or more
  /// predecessors, summed over every dataflow sweep the pass ran.
  uint64_t JoinMerges = 0;
  /// Cfg mode: defined functions whose exit summary was computed exactly
  /// by the intraprocedural dataflow (functions in a call-graph cycle
  /// fall back to the may-free summary and are not counted).
  uint64_t ExitSummaries = 0;
  /// Wall-clock seconds of the pass.
  double Seconds = 0;
};

/// Runs the linear invalidation pass over \p S, which must have been
/// solved to a converged fixpoint. Verdicts are recorded into the
/// solver's site events; re-running solve() clears them.
FlowResult runInvalidationPass(Solver &S);

/// Runs the CFG-dataflow flavour (--flow=cfg). Same contract as
/// runInvalidationPass; requires the normalizer-built CFG carried by the
/// solver's NormProgram.
FlowResult runCfgFlowPass(Solver &S);

/// Runs the flavour selected by \p Mode.
FlowResult runFlowPass(Solver &S, FlowMode Mode);

/// Result of one auditFlowRefinement call.
struct FlowAuditResult {
  uint64_t SitesChecked = 0;
  uint64_t Violations = 0;
  std::vector<std::string> Messages;
  bool ok() const { return Violations == 0; }
};

/// Independently re-checks the refinement invariant over the recorded
/// verdicts: every object a verdict invalidates must carry the solve's
/// flow-insensitive freed mark and be among the site's dereference
/// targets — so a refined verdict can only suppress reports the baseline
/// also produced, never add one. Also re-verifies the normalizer-built
/// CFG's well-formedness (src/cfg/CfgVerifier.h) when the program has
/// one, folding any violations into the result.
FlowAuditResult auditFlowRefinement(Solver &S);

} // namespace spa

#endif // SPA_FLOW_FLOWPASS_H
