//===--- FlowPass.cpp -----------------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "flow/FlowPass.h"

#include "cfg/Cfg.h"
#include "cfg/CfgVerifier.h"
#include "pta/GraphExport.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

using namespace spa;

namespace {

using Effect = LibrarySummaries::Effect;

/// One run of the pass. Every step iterates ids in ascending order and
/// unions into sorted IdSets, so the verdicts are a pure function of the
/// fixpoint — bit-identical across engines, representations, threads, and
/// preprocessing, exactly like the solution they refine.
class InvalidationPass {
public:
  InvalidationPass(Solver &S, FlowMode Mode)
      : S(S), Mode(Mode), Prog(S.program()), Order(Prog.stmtOrder()) {}

  FlowResult run() {
    auto Start = std::chrono::steady_clock::now();
    FlowResult Result;
    if (Mode == FlowMode::Cfg) {
      Result.CfgBlocks = Prog.Cfg.totalBlocks();
      Result.CfgEdges = Prog.Cfg.totalEdges();
    }
    if (S.freedObjects().empty()) {
      // Nothing is ever deallocated: every site's verdict is the empty
      // set, which the checker treats exactly like the (empty) baseline.
      IdSet<ObjectTag> Empty;
      for (size_t I = 0; I < Prog.DerefSites.size(); ++I)
        S.setSiteFlowVerdict(I, Empty);
      Result.Seconds = secondsSince(Start);
      return Result;
    }

    computeEscapes();
    computeStmtFrees();
    computeMayFree();
    if (Mode == FlowMode::Cfg)
      computeExitSummaries();
    seedEntries();
    propagateEntries();
    recordVerdicts();
    collectCounters(Result);
    if (Mode == FlowMode::Cfg) {
      Result.JoinMerges = JoinMerges;
      Result.ExitSummaries = ExactSummaries;
    }
    Result.Seconds = secondsSince(Start);
    return Result;
  }

private:
  static double
  secondsSince(std::chrono::steady_clock::time_point Start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  }

  ObjectId objectOf(NodeId Node) {
    return S.model().nodes().objectOf(Node);
  }

  bool isDefined(FuncId F) const { return Prog.func(F).IsDefined; }

  /// Objects whose address may be held by code outside the program, and
  /// defined functions such code may invoke. Data objects escape only
  /// through calls that may reach a *truly unknown* external — one with
  /// no library summary (it can do anything, including stashing the
  /// pointer). Summary-bearing externals (free, realloc, memcpy, ...)
  /// have modelled effects and do not retain their arguments, so they
  /// must not block allocation-site revival. Function-valued arguments
  /// escape for *any* undefined callee: even a summarised external can
  /// stash a callback for later (signal, atexit, qsort). Seeds close
  /// transitively with the shared $extern blob: unknown code can follow
  /// any pointer stored in memory it reaches.
  void computeEscapes() {
    EscapedFunc.assign(Prog.Funcs.size(), 0);
    std::vector<ObjectId> Pending;
    auto Reach = [&](ObjectId Obj, bool DataToo) {
      const NormObject &Info = Prog.object(Obj);
      if (Info.Kind == ObjectKind::Function) {
        if (Info.AsFunction.isValid() && isDefined(Info.AsFunction))
          EscapedFunc[Info.AsFunction.index()] = 1;
        return;
      }
      if (DataToo && Escaped.insert(Obj))
        Pending.push_back(Obj);
    };
    for (const NormStmt &St : Prog.Stmts) {
      if (St.Op != NormOp::Call)
        continue;
      std::vector<FuncId> Callees = S.calleesOf(St);
      bool AnyUndefined =
          St.IndirectCallee.isValid() && Callees.empty(); // unresolvable
      bool AnyUnknown = AnyUndefined;
      for (FuncId Callee : Callees) {
        if (isDefined(Callee))
          continue;
        AnyUndefined = true;
        if (!S.summaries().hasSummary(
                Prog.Strings.text(Prog.func(Callee).Name)))
          AnyUnknown = true;
      }
      if (!AnyUndefined)
        continue;
      for (ObjectId Arg : St.Args)
        for (NodeId T : S.pointsTo(S.normalizeObj(Arg)))
          Reach(objectOf(T), AnyUnknown);
    }
    if (S.externObjectId().isValid())
      Reach(S.externObjectId(), true);
    while (!Pending.empty()) {
      ObjectId Obj = Pending.back();
      Pending.pop_back();
      for (NodeId N : S.model().nodes().nodesOfObject(Obj))
        for (NodeId T : S.pointsTo(N))
          Reach(objectOf(T), true);
    }
  }

  /// Per call statement: the deallocations applied directly by library
  /// summaries of undefined callees (mirroring LibrarySummaries' Dealloc
  /// effect — heap objects in pts of the named argument), and the defined
  /// callees whose summaries the statement inherits. Restricting to
  /// objects the solve marked freed makes "verdict is a subset of the
  /// freed mark" hold by construction.
  void computeStmtFrees() {
    StmtFrees.resize(Prog.Stmts.size());
    StmtDefinedCallees.resize(Prog.Stmts.size());
    StmtHasUndefinedCallee.assign(Prog.Stmts.size(), 0);
    for (uint32_t I = 0; I < Prog.Stmts.size(); ++I) {
      const NormStmt &St = Prog.Stmts[I];
      if (St.Op != NormOp::Call)
        continue;
      std::vector<FuncId> Callees = S.calleesOf(St);
      if (St.IndirectCallee.isValid() && Callees.empty())
        StmtHasUndefinedCallee[I] = 1; // unresolvable indirect call
      for (FuncId Callee : Callees) {
        if (isDefined(Callee)) {
          StmtDefinedCallees[I].push_back(Callee);
          continue;
        }
        StmtHasUndefinedCallee[I] = 1;
        const std::vector<Effect> *Sum = S.summaries().summaryOf(
            Prog.Strings.text(Prog.func(Callee).Name));
        if (!Sum)
          continue;
        for (const Effect &E : *Sum) {
          if (E.K != Effect::Dealloc || E.A < 0 ||
              static_cast<size_t>(E.A) >= St.Args.size())
            continue;
          for (NodeId T : S.pointsTo(S.normalizeObj(St.Args[E.A]))) {
            ObjectId Obj = objectOf(T);
            if (S.isFreed(Obj))
              StmtFrees[I].insert(Obj);
          }
        }
      }
      std::vector<FuncId> &Defs = StmtDefinedCallees[I];
      std::sort(Defs.begin(), Defs.end(),
                [](FuncId A, FuncId B) { return A.index() < B.index(); });
      Defs.erase(std::unique(Defs.begin(), Defs.end()), Defs.end());
    }
  }

  /// Bottom-up may-free summaries over the defined-function call graph:
  /// MayFree(F) = F's own summary-applied deallocations, plus everything
  /// any (transitive) defined callee may free. Computed with one
  /// iterative Tarjan pass — an SCC is emitted only after every callee
  /// outside it is finished, so out-of-SCC summaries are final when read,
  /// and all members of a cycle share one summary. In Cfg mode the SCC
  /// emission order doubles as the bottom-up schedule for the exit
  /// summaries, so it is captured along the way.
  void computeMayFree() {
    size_t N = Prog.Funcs.size();
    MayFree.assign(N, {});
    Adj.assign(N, {});
    std::vector<IdSet<ObjectTag>> Direct(N);
    for (uint32_t F = 0; F < N; ++F) {
      if (!isDefined(FuncId(F)))
        continue;
      for (uint32_t I : Order.ByFunc[F]) {
        Direct[F].insertAll(StmtFrees[I]);
        for (FuncId C : StmtDefinedCallees[I])
          Adj[F].push_back(C.index());
      }
      std::sort(Adj[F].begin(), Adj[F].end());
      Adj[F].erase(std::unique(Adj[F].begin(), Adj[F].end()), Adj[F].end());
    }

    std::vector<int32_t> Index(N, -1), Low(N, 0), SccOf(N, -1);
    std::vector<char> OnStack(N, 0);
    std::vector<uint32_t> Stack;
    struct Frame {
      uint32_t Node;
      size_t Edge;
    };
    std::vector<Frame> Dfs;
    int32_t Next = 0, SccCount = 0;
    for (uint32_t Root = 0; Root < N; ++Root) {
      if (!isDefined(FuncId(Root)) || Index[Root] >= 0)
        continue;
      Index[Root] = Low[Root] = Next++;
      Stack.push_back(Root);
      OnStack[Root] = 1;
      Dfs.push_back({Root, 0});
      while (!Dfs.empty()) {
        Frame &Top = Dfs.back();
        if (Top.Edge < Adj[Top.Node].size()) {
          uint32_t C = Adj[Top.Node][Top.Edge++];
          if (Index[C] < 0) {
            Index[C] = Low[C] = Next++;
            Stack.push_back(C);
            OnStack[C] = 1;
            Dfs.push_back({C, 0});
          } else if (OnStack[C]) {
            Low[Top.Node] = std::min(Low[Top.Node], Index[C]);
          }
          continue;
        }
        uint32_t Node = Top.Node;
        Dfs.pop_back();
        if (!Dfs.empty())
          Low[Dfs.back().Node] = std::min(Low[Dfs.back().Node], Low[Node]);
        if (Low[Node] != Index[Node])
          continue;
        std::vector<uint32_t> Members;
        for (;;) {
          uint32_t M = Stack.back();
          Stack.pop_back();
          OnStack[M] = 0;
          SccOf[M] = SccCount;
          Members.push_back(M);
          if (M == Node)
            break;
        }
        ++SccCount;
        IdSet<ObjectTag> Sum;
        for (uint32_t M : Members)
          Sum.insertAll(Direct[M]);
        for (uint32_t M : Members)
          for (uint32_t C : Adj[M])
            if (SccOf[C] != SccOf[Node])
              Sum.insertAll(MayFree[C]);
        for (uint32_t M : Members)
          MayFree[M] = Sum;
        if (Mode == FlowMode::Cfg) {
          bool SelfLoop = false;
          for (uint32_t M : Members)
            for (uint32_t C : Adj[M])
              if (SccOf[C] == SccOf[Node])
                SelfLoop = true;
          SccNontrivial.push_back(Members.size() > 1 || SelfLoop);
          SccOrder.push_back(std::move(Members));
        }
      }
    }

    // Invalidate mode folds the summaries into the per-statement
    // deallocation sets: from here on, StmtFrees[I] is everything call
    // statement I may free. Cfg mode keeps them separate — the callee
    // contribution comes from the exit summaries instead.
    if (Mode == FlowMode::Invalidate)
      for (uint32_t I = 0; I < Prog.Stmts.size(); ++I)
        for (FuncId C : StmtDefinedCallees[I])
          StmtFrees[I].insertAll(MayFree[C.index()]);
  }

  //===--------------------------------------------------------------------===//
  // Cfg mode: intraprocedural dataflow and exit summaries
  //===--------------------------------------------------------------------===//

  /// Forward may-freed dataflow over one function's CFG, seeded with
  /// \p Seed at the entry block. On return In[b] holds the converged
  /// block-entry state; blocks unreachable from the entry keep the bottom
  /// (empty) state — code that can never execute contributes nothing at
  /// joins. Round-robin sweeps in reverse postorder; the transfers are
  /// monotone over a finite lattice so the fixpoint is reached within the
  /// sweep cap, which exists purely as a safety valve (on overrun every
  /// reachable state is widened to the full freed set — still sound).
  void intraMayFixpoint(const FuncCfg &F, const IdSet<ObjectTag> &Seed,
                        std::vector<IdSet<ObjectTag>> &In) {
    size_t N = F.Blocks.size();
    In.assign(N, {});
    std::vector<IdSet<ObjectTag>> Out(N);
    size_t Sweeps = 0;
    const size_t MaxSweeps = 4 * F.Rpo.size() + 8;
    bool Changed = true;
    while (Changed) {
      if (++Sweeps > MaxSweeps) {
        for (uint32_t B : F.Rpo)
          In[B].insertAll(S.freedObjects());
        return;
      }
      Changed = false;
      for (uint32_t B : F.Rpo) {
        IdSet<ObjectTag> NewIn;
        if (B == F.Entry)
          NewIn = Seed;
        const CfgBlock &Blk = F.Blocks[B];
        for (uint32_t P : Blk.Preds)
          NewIn.insertAll(Out[P]);
        if (Blk.Preds.size() >= 2)
          ++JoinMerges;
        IdSet<ObjectTag> NewOut = NewIn;
        for (uint32_t SI : Blk.Stmts)
          applyStmt(SI, NewOut, nullptr, false);
        In[B] = std::move(NewIn);
        if (!(NewOut == Out[B])) {
          Out[B] = std::move(NewOut);
          Changed = true;
        }
      }
    }
  }

  /// Forward must-revive dataflow over one function's CFG: at block exit
  /// the set holds the objects whose last event on *every* entry path was
  /// an allocation-site re-execution (or a callee that must-revives
  /// them). Joins intersect; blocks not yet reached carry top and are
  /// skipped. Returns false if the sweep cap was hit (the caller then
  /// claims no revival, which is always sound).
  bool intraMustReviveFixpoint(const FuncCfg &F, IdSet<ObjectTag> &AtExit) {
    size_t N = F.Blocks.size();
    std::vector<IdSet<ObjectTag>> In(N), Out(N);
    std::vector<char> HaveIn(N, 0), HaveOut(N, 0);
    size_t Sweeps = 0;
    const size_t MaxSweeps = 4 * F.Rpo.size() + 8;
    bool Changed = true;
    while (Changed) {
      if (++Sweeps > MaxSweeps)
        return false;
      Changed = false;
      for (uint32_t B : F.Rpo) {
        IdSet<ObjectTag> NewIn;
        bool Known = false;
        if (B == F.Entry) {
          Known = true; // nothing is revived at function entry
        } else {
          const CfgBlock &Blk = F.Blocks[B];
          for (uint32_t P : Blk.Preds) {
            if (!HaveOut[P])
              continue; // top: no constraint yet
            if (!Known) {
              NewIn = Out[P];
              Known = true;
              continue;
            }
            IdSet<ObjectTag> Keep;
            for (ObjectId Obj : NewIn)
              if (Out[P].contains(Obj))
                Keep.insert(Obj);
            NewIn = std::move(Keep);
          }
          if (Blk.Preds.size() >= 2)
            ++JoinMerges;
        }
        if (!Known)
          continue;
        IdSet<ObjectTag> NewOut = NewIn;
        for (uint32_t SI : F.Blocks[B].Stmts)
          transferMustRevive(SI, NewOut);
        In[B] = std::move(NewIn);
        HaveIn[B] = 1;
        if (!HaveOut[B] || !(NewOut == Out[B])) {
          Out[B] = std::move(NewOut);
          HaveOut[B] = 1;
          Changed = true;
        }
      }
    }
    AtExit = HaveIn[F.Exit] ? In[F.Exit] : IdSet<ObjectTag>();
    return true;
  }

  /// Must-revive transfer of one statement: an allocation-site
  /// re-execution definitely revives its block (unless escaped); a call
  /// un-revives everything it may free and adds what it must-revive.
  void transferMustRevive(uint32_t Idx, IdSet<ObjectTag> &Set) {
    const NormStmt &St = Prog.Stmts[Idx];
    switch (St.Op) {
    case NormOp::AddrOf:
      if (St.Src.isValid() &&
          Prog.object(St.Src).Kind == ObjectKind::Heap &&
          !Escaped.contains(St.Src) && S.isFreed(St.Src))
        Set.insert(St.Src);
      break;
    case NormOp::Call:
      for (ObjectId Obj : CallMayFree[Idx])
        Set.erase(Obj);
      Set.insertAll(CallMustRevive[Idx]);
      break;
    default:
      break;
    }
  }

  /// Folds the callees' exit summaries into one transfer per call
  /// statement: everything the call may leave freed, and everything it is
  /// guaranteed to revive. A call possibly reaching any undefined or
  /// unresolvable callee revives nothing.
  void computeCallTransfer(uint32_t I) {
    if (Prog.Stmts[I].Op != NormOp::Call)
      return;
    CallMayFree[I] = StmtFrees[I];
    const std::vector<FuncId> &Defs = StmtDefinedCallees[I];
    for (FuncId C : Defs)
      CallMayFree[I].insertAll(ExitMayFree[C.index()]);
    if (Defs.empty() || StmtHasUndefinedCallee[I])
      return;
    IdSet<ObjectTag> Must = ExitMustRevive[Defs[0].index()];
    for (size_t J = 1; J < Defs.size() && !Must.empty(); ++J) {
      const IdSet<ObjectTag> &Other = ExitMustRevive[Defs[J].index()];
      IdSet<ObjectTag> Keep;
      for (ObjectId Obj : Must)
        if (Other.contains(Obj))
          Keep.insert(Obj);
      Must = std::move(Keep);
    }
    CallMustRevive[I] = std::move(Must);
  }

  /// Exit summaries per defined function, bottom-up in the Tarjan SCC
  /// completion order captured by computeMayFree. For a function outside
  /// any call-graph cycle the summaries are exact: with gen set G (the
  /// objects some entry->exit path leaves freed, its exit may-state from
  /// an empty entry) and must-revive set K, the callee maps a caller
  /// state E to (E \ K) ∪ G. Cycle members fall back to the conservative
  /// may-free summary with no revival.
  void computeExitSummaries() {
    size_t N = Prog.Funcs.size();
    ExitMayFree.assign(N, {});
    ExitMustRevive.assign(N, {});
    CallMayFree.assign(Prog.Stmts.size(), {});
    CallMustRevive.assign(Prog.Stmts.size(), {});
    std::vector<IdSet<ObjectTag>> In;
    for (size_t SccI = 0; SccI < SccOrder.size(); ++SccI) {
      const std::vector<uint32_t> &Members = SccOrder[SccI];
      if (SccNontrivial[SccI])
        for (uint32_t M : Members)
          ExitMayFree[M] = MayFree[M]; // ExitMustRevive stays empty
      // Call transfers for member statements: callee summaries are final
      // here — outside the SCC by bottom-up order, inside it by the
      // fallback just installed.
      for (uint32_t M : Members)
        for (uint32_t I : Order.ByFunc[M])
          computeCallTransfer(I);
      if (SccNontrivial[SccI])
        continue;
      uint32_t F = Members[0];
      const FuncCfg *C = Prog.Cfg.cfgFor(F);
      if (!C) {
        ExitMayFree[F] = MayFree[F];
        continue;
      }
      intraMayFixpoint(*C, {}, In);
      ExitMayFree[F] = In[C->Exit];
      IdSet<ObjectTag> Must;
      if (intraMustReviveFixpoint(*C, Must))
        ExitMustRevive[F] = std::move(Must);
      ++ExactSummaries;
    }
    // Global-initializer calls sit in no function; their callees' exit
    // summaries are all final by now.
    for (uint32_t I : Order.Globals)
      computeCallTransfer(I);
  }

  /// Entry states. main starts with the global-initializer walk's result;
  /// functions whose invocation order the pass cannot see — no main at
  /// all, unreachable from main through the defined-call graph, or
  /// escaped to an external as a callback — start with every freed object
  /// invalid, so their sites refine to exactly the baseline answer.
  void seedEntries() {
    size_t N = Prog.Funcs.size();
    Entry.assign(N, {});
    GlobalsEntry = IdSet<ObjectTag>();
    for (uint32_t I : Order.Globals)
      applyStmt(I, GlobalsEntry, nullptr, false);

    FuncId Main = Prog.findFunc(Prog.Strings.intern("main"));
    bool HaveMain = Main.isValid() && isDefined(Main);
    std::vector<char> Reachable(N, 0);
    if (HaveMain) {
      Entry[Main.index()] = GlobalsEntry;
      std::vector<uint32_t> Work{Main.index()};
      Reachable[Main.index()] = 1;
      while (!Work.empty()) {
        uint32_t F = Work.back();
        Work.pop_back();
        for (uint32_t I : Order.ByFunc[F])
          for (FuncId C : StmtDefinedCallees[I])
            if (!Reachable[C.index()]) {
              Reachable[C.index()] = 1;
              Work.push_back(C.index());
            }
      }
    }
    for (uint32_t F = 0; F < N; ++F)
      if (isDefined(FuncId(F)) &&
          (!HaveMain || !Reachable[F] || EscapedFunc[F]))
        Entry[F].insertAll(S.freedObjects());
  }

  /// Top-down entry propagation to a fixpoint: at every call, the
  /// caller's invalidation state flows into each defined callee's entry.
  /// Entries only grow and are bounded by the freed set, so this
  /// terminates; functions are walked in id order for determinism. In Cfg
  /// mode the caller's state at a call comes from the converged
  /// intraprocedural dataflow rather than the linear walk.
  void propagateEntries() {
    std::vector<IdSet<ObjectTag>> In;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (uint32_t F = 0; F < Prog.Funcs.size(); ++F) {
        if (!isDefined(FuncId(F)))
          continue;
        const FuncCfg *C =
            Mode == FlowMode::Cfg ? Prog.Cfg.cfgFor(F) : nullptr;
        if (!C) {
          IdSet<ObjectTag> Inval = Entry[F];
          for (uint32_t I : Order.ByFunc[F])
            applyStmt(I, Inval, &Changed, false);
          continue;
        }
        intraMayFixpoint(*C, Entry[F], In);
        for (uint32_t B = 0; B < C->Blocks.size(); ++B) {
          IdSet<ObjectTag> State = In[B];
          for (uint32_t SI : C->Blocks[B].Stmts)
            applyStmt(SI, State, &Changed, false);
        }
      }
    }
  }

  /// Some dereference sites have no statement: the normalizer drops
  /// assignments that move no pointer facts (e.g. "*d = 1") but still
  /// records the site for the Figure-4 metric and the checkers. Each such
  /// site is anchored to the function of the nearest preceding statement
  /// in byte order (the site's pointer gives the function directly when it
  /// is a local), and its verdict is recorded between the statements its
  /// offset falls between. Sites before any statement stay unrefined —
  /// the checker then falls back to the flow-insensitive mark.
  void assignUnattachedSites() {
    PendingByFunc.assign(Prog.Funcs.size(), {});
    std::vector<char> Attached(Prog.DerefSites.size(), 0);
    for (const NormStmt &St : Prog.Stmts)
      if (St.DerefSite >= 0 &&
          static_cast<size_t>(St.DerefSite) < Attached.size())
        Attached[St.DerefSite] = 1;

    std::vector<std::pair<uint64_t, uint32_t>> ByOffset; // (offset, stmt)
    for (uint32_t I = 0; I < Prog.Stmts.size(); ++I)
      ByOffset.emplace_back(Prog.Stmts[I].Loc.Offset, I);
    std::sort(ByOffset.begin(), ByOffset.end());

    for (uint32_t I = 0; I < Prog.DerefSites.size(); ++I) {
      if (Attached[I])
        continue;
      const DerefSite &Site = Prog.DerefSites[I];
      FuncId Owner = Prog.object(Site.Ptr).Owner;
      if (!Owner.isValid()) {
        // A global pointer names no function; the last statement at or
        // before the site does.
        auto It = std::upper_bound(
            ByOffset.begin(), ByOffset.end(),
            std::make_pair(static_cast<uint64_t>(Site.Loc.Offset),
                           UINT32_MAX));
        if (It == ByOffset.begin())
          continue; // before every statement: leave the baseline verdict
        Owner = Prog.Stmts[std::prev(It)->second].Owner;
      }
      if (Owner.isValid() && isDefined(Owner))
        PendingByFunc[Owner.index()].push_back(I);
    }
    for (std::vector<uint32_t> &Pending : PendingByFunc)
      std::sort(Pending.begin(), Pending.end(),
                [&](uint32_t A, uint32_t B) {
                  return std::make_pair(Prog.DerefSites[A].Loc.Offset, A) <
                         std::make_pair(Prog.DerefSites[B].Loc.Offset, B);
                });
  }

  /// Records the verdict of one site against the running invalidated set.
  void recordSite(uint32_t SiteIdx, const IdSet<ObjectTag> &Inval) {
    IdSet<ObjectTag> Verdict;
    for (NodeId T : S.derefTargets(Prog.DerefSites[SiteIdx])) {
      ObjectId Obj = objectOf(T);
      if (Inval.contains(Obj))
        Verdict.insert(Obj);
    }
    S.setSiteFlowVerdict(SiteIdx, Verdict);
  }

  /// The final walk: re-run every function from its converged entry state
  /// and record a verdict at each dereference site, interleaving the
  /// statement-less sites at their byte-order position. In Cfg mode each
  /// block is replayed once, in block-id order, from its converged entry
  /// state; a pending site anchors to the first emitted statement at or
  /// after its byte offset (or to the function exit when none follows),
  /// so every site gets exactly one verdict.
  void recordVerdicts() {
    assignUnattachedSites();
    IdSet<ObjectTag> G;
    for (uint32_t I : Order.Globals)
      applyStmt(I, G, nullptr, true);
    std::vector<IdSet<ObjectTag>> In;
    for (uint32_t F = 0; F < Prog.Funcs.size(); ++F) {
      if (!isDefined(FuncId(F)))
        continue;
      const std::vector<uint32_t> &Pending = PendingByFunc[F];
      const FuncCfg *C =
          Mode == FlowMode::Cfg ? Prog.Cfg.cfgFor(F) : nullptr;
      if (!C) {
        IdSet<ObjectTag> Inval = Entry[F];
        size_t Next = 0;
        for (uint32_t I : Order.ByFunc[F]) {
          while (Next < Pending.size() &&
                 Prog.DerefSites[Pending[Next]].Loc.Offset <=
                     Prog.Stmts[I].Loc.Offset)
            recordSite(Pending[Next++], Inval);
          applyStmt(I, Inval, nullptr, true);
        }
        while (Next < Pending.size())
          recordSite(Pending[Next++], Inval);
        continue;
      }
      std::unordered_map<uint32_t, std::vector<uint32_t>> AtStmt;
      std::vector<uint32_t> AtExit;
      {
        size_t Next = 0;
        for (uint32_t I : Order.ByFunc[F])
          while (Next < Pending.size() &&
                 Prog.DerefSites[Pending[Next]].Loc.Offset <=
                     Prog.Stmts[I].Loc.Offset)
            AtStmt[I].push_back(Pending[Next++]);
        while (Next < Pending.size())
          AtExit.push_back(Pending[Next++]);
      }
      intraMayFixpoint(*C, Entry[F], In);
      for (uint32_t B = 0; B < C->Blocks.size(); ++B) {
        IdSet<ObjectTag> State = In[B];
        for (uint32_t SI : C->Blocks[B].Stmts) {
          auto It = AtStmt.find(SI);
          if (It != AtStmt.end())
            for (uint32_t Site : It->second)
              recordSite(Site, State);
          applyStmt(SI, State, nullptr, true);
        }
      }
      for (uint32_t Site : AtExit)
        recordSite(Site, In[C->Exit]);
    }
  }

  /// Interprets one statement against the running invalidated set. The
  /// site verdict is recorded *before* the statement's own effects: a
  /// call dereferences its function pointer before the callee can free
  /// anything. Only two operations change the set — an AddrOf of a heap
  /// pseudo-variable re-executes the allocation site (revival, unless the
  /// address escapes), and a call applies its deallocation transfer
  /// (Invalidate: the folded may-free set; Cfg: the exit summaries'
  /// must-revive erase followed by the may-free union).
  void applyStmt(uint32_t Idx, IdSet<ObjectTag> &Inval, bool *EntriesChanged,
                 bool Record) {
    const NormStmt &St = Prog.Stmts[Idx];
    if (Record && St.DerefSite >= 0)
      recordSite(static_cast<uint32_t>(St.DerefSite), Inval);
    switch (St.Op) {
    case NormOp::AddrOf:
      if (St.Src.isValid() &&
          Prog.object(St.Src).Kind == ObjectKind::Heap &&
          !Escaped.contains(St.Src))
        Inval.erase(St.Src);
      break;
    case NormOp::Call:
      if (EntriesChanged)
        for (FuncId C : StmtDefinedCallees[Idx])
          if (Entry[C.index()].insertAll(Inval))
            *EntriesChanged = true;
      if (Mode == FlowMode::Cfg) {
        for (ObjectId Obj : CallMustRevive[Idx])
          Inval.erase(Obj);
        Inval.insertAll(CallMayFree[Idx]);
      } else {
        Inval.insertAll(StmtFrees[Idx]);
      }
      break;
    default:
      break;
    }
  }

  /// Everything call statement \p Idx may leave freed, in the current
  /// mode's semantics.
  const IdSet<ObjectTag> &freesOf(uint32_t Idx) const {
    return Mode == FlowMode::Cfg ? CallMayFree[Idx] : StmtFrees[Idx];
  }

  void collectCounters(FlowResult &Result) {
    // Everything a walk's running set can ever contain comes from an
    // entry state or a call's deallocation transfer.
    IdSet<ObjectTag> Ever = GlobalsEntry;
    for (uint32_t F = 0; F < Prog.Funcs.size(); ++F) {
      if (!isDefined(FuncId(F)))
        continue;
      Ever.insertAll(Entry[F]);
      for (uint32_t I : Order.ByFunc[F])
        Ever.insertAll(freesOf(I));
    }
    for (uint32_t I : Order.Globals)
      Ever.insertAll(freesOf(I));
    Result.ObjectsInvalidated = Ever.size();

    const std::vector<SiteEvents> &Events = S.siteEvents();
    for (size_t I = 0; I < Prog.DerefSites.size() && I < Events.size();
         ++I) {
      bool BaselineHit = false, MissingSome = false;
      for (NodeId T : S.derefTargets(Prog.DerefSites[I])) {
        ObjectId Obj = objectOf(T);
        if (!S.isFreed(Obj))
          continue;
        BaselineHit = true;
        if (Events[I].FlowRefined &&
            !Events[I].InvalidatedBefore.contains(Obj))
          MissingSome = true;
      }
      bool RefinedHit = Events[I].FlowRefined
                            ? !Events[I].InvalidatedBefore.empty()
                            : BaselineHit;
      if (MissingSome)
        ++Result.SitesRefined;
      if (BaselineHit && !RefinedHit)
        ++Result.ReportsSuppressed;
    }
  }

  Solver &S;
  FlowMode Mode;
  NormProgram &Prog;
  NormProgram::StmtOrder Order;
  /// Objects reachable by unknown external code (never revived).
  IdSet<ObjectTag> Escaped;
  /// Defined functions an external may invoke (callback entries).
  std::vector<char> EscapedFunc;
  /// Per statement: the objects a call statement may free. Built from
  /// undefined-callee summaries; Invalidate mode widens it in place by
  /// the defined-callee may-free summaries (empty for non-calls).
  std::vector<IdSet<ObjectTag>> StmtFrees;
  std::vector<std::vector<FuncId>> StmtDefinedCallees;
  /// Per statement: whether the call may reach an undefined or
  /// unresolvable callee (blocks the must-revive transfer).
  std::vector<char> StmtHasUndefinedCallee;
  /// Defined-call adjacency (function index -> callee indices).
  std::vector<std::vector<uint32_t>> Adj;
  std::vector<IdSet<ObjectTag>> MayFree;
  std::vector<IdSet<ObjectTag>> Entry;
  IdSet<ObjectTag> GlobalsEntry;
  /// Statement-less deref sites per function, in byte order (see
  /// assignUnattachedSites).
  std::vector<std::vector<uint32_t>> PendingByFunc;

  /// \name Cfg-mode state.
  /// @{
  /// Tarjan SCC members in completion (bottom-up) order, and whether each
  /// SCC has more than one member or a self edge.
  std::vector<std::vector<uint32_t>> SccOrder;
  std::vector<char> SccNontrivial;
  /// Per function: exit summaries (see computeExitSummaries).
  std::vector<IdSet<ObjectTag>> ExitMayFree;
  std::vector<IdSet<ObjectTag>> ExitMustRevive;
  /// Per call statement: the folded callee transfer.
  std::vector<IdSet<ObjectTag>> CallMayFree;
  std::vector<IdSet<ObjectTag>> CallMustRevive;
  uint64_t JoinMerges = 0;
  uint64_t ExactSummaries = 0;
  /// @}
};

} // namespace

FlowResult spa::runInvalidationPass(Solver &S) {
  return InvalidationPass(S, FlowMode::Invalidate).run();
}

FlowResult spa::runCfgFlowPass(Solver &S) {
  return InvalidationPass(S, FlowMode::Cfg).run();
}

FlowResult spa::runFlowPass(Solver &S, FlowMode Mode) {
  return InvalidationPass(S, Mode).run();
}

FlowAuditResult spa::auditFlowRefinement(Solver &S) {
  FlowAuditResult R;
  NormProgram &Prog = S.program();
  const std::vector<SiteEvents> &Events = S.siteEvents();
  for (size_t I = 0; I < Events.size() && I < Prog.DerefSites.size(); ++I) {
    if (!Events[I].FlowRefined)
      continue;
    ++R.SitesChecked;
    IdSet<ObjectTag> TargetObjs;
    for (NodeId T : S.derefTargets(Prog.DerefSites[I]))
      TargetObjs.insert(S.model().nodes().objectOf(T));
    for (ObjectId Obj : Events[I].InvalidatedBefore) {
      if (!S.isFreed(Obj)) {
        ++R.Violations;
        R.Messages.push_back(
            "site at " + toString(Prog.DerefSites[I].Loc) +
            ": refined verdict invalidates '" + Prog.objectName(Obj) +
            "', which the flow-insensitive solve never marked freed");
      } else if (!TargetObjs.contains(Obj)) {
        ++R.Violations;
        R.Messages.push_back(
            "site at " + toString(Prog.DerefSites[I].Loc) +
            ": refined verdict invalidates '" + Prog.objectName(Obj) +
            "', which is not among the site's dereference targets");
      }
    }
  }
  // The dataflow flavour trusts the CFG's invariants; re-check them here
  // so a corrupt graph surfaces as an audit failure, not a silent
  // mis-refinement.
  if (!Prog.Cfg.empty()) {
    std::vector<char> Defined(Prog.Funcs.size(), 0);
    for (size_t F = 0; F < Prog.Funcs.size(); ++F)
      Defined[F] = Prog.Funcs[F].IsDefined ? 1 : 0;
    NormProgram::StmtOrder Order = Prog.stmtOrder();
    CfgVerifyResult CR =
        verifyCfg(Prog.Cfg, Order.ByFunc, Defined, Prog.Stmts.size());
    R.Violations += CR.Violations;
    for (std::string &Msg : CR.Messages)
      R.Messages.push_back("cfg: " + std::move(Msg));
  }
  return R;
}
