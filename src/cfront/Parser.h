//===--- Parser.h - C parser -----------------------------------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the ANSI-C subset used by the analysis:
/// full declarator syntax (function pointers, nested declarators, arrays),
/// struct/union/enum definitions, typedefs, the complete expression grammar
/// with casts, and all statements. Expressions are typed during parsing;
/// member references are resolved to field indices.
///
/// Out of scope (diagnosed as errors where they would matter): K&R-style
/// parameter lists, designated initializers, bit-field layout (widths are
/// parsed and ignored; each bit-field occupies its declared type), _Bool
/// and other C99-only types.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CFRONT_PARSER_H
#define SPA_CFRONT_PARSER_H

#include "cfront/AST.h"
#include "cfront/Lexer.h"
#include "ctypes/Layout.h"
#include "support/Diagnostics.h"

#include <map>
#include <optional>
#include <string_view>

namespace spa {

/// Parses one translation unit into an existing TranslationUnit.
class Parser {
public:
  /// \p Target is used only to fold sizeof expressions to constants.
  Parser(std::string_view Source, TranslationUnit &TU, DiagnosticEngine &Diags,
         TargetInfo Target = TargetInfo::ilp32());

  /// Parses the whole buffer. Returns true if no errors were reported.
  bool parseTranslationUnit();

private:
  /// \name Token stream.
  /// @{
  const Token &tok() const { return Cur; }
  const Token &peekTok();
  void consume();
  bool at(TokKind Kind) const { return Cur.Kind == Kind; }
  bool accept(TokKind Kind);
  bool expect(TokKind Kind, const char *Context);
  /// @}

  /// \name Scopes.
  /// @{
  struct OrdinaryEntry {
    enum EntryKind { EK_Var, EK_Func, EK_Typedef, EK_EnumConst } Kind;
    VarDecl *Var = nullptr;
    FunctionDecl *Fn = nullptr;
    TypeId TypedefTy;
    long EnumValue = 0;
    TypeId EnumTy;
  };
  struct TagEntry {
    bool IsEnum = false;
    RecordId Rec;
    EnumId En;
  };
  struct ScopeLevel {
    std::map<Symbol, OrdinaryEntry> Ordinary;
    std::map<Symbol, TagEntry> Tags;
  };
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  const OrdinaryEntry *lookupOrdinary(Symbol Name) const;
  const TagEntry *lookupTag(Symbol Name) const;
  void declareOrdinary(Symbol Name, OrdinaryEntry Entry);
  bool isTypeName(const Token &T) const;
  /// @}

  /// \name Declarations.
  /// @{
  struct DeclSpecs {
    TypeId Base;
    bool IsTypedef = false;
    bool IsExtern = false;
    bool IsStatic = false;
    bool SawSpecifier = false;
  };
  /// A parsed declarator, built inside-out when applied to a base type.
  struct Declarator {
    struct PointerLevel {
      uint8_t Quals = QualNone;
    };
    struct ArraySuffix {
      uint64_t Count = 0;
    };
    struct FunctionSuffix {
      std::vector<TypeId> ParamTypes;
      std::vector<Symbol> ParamNames;
      std::vector<SourceLoc> ParamLocs;
      bool Variadic = false;
    };
    struct Suffix {
      bool IsFunction = false;
      ArraySuffix Array;
      FunctionSuffix Function;
    };
    std::vector<PointerLevel> Pointers;
    std::unique_ptr<Declarator> Nested;
    Symbol Name; ///< invalid for abstract declarators
    SourceLoc NameLoc;
    std::vector<Suffix> Suffixes;
  };

  void parseExternalDeclaration();
  DeclSpecs parseDeclSpecs();
  bool atDeclSpecStart() const;
  TypeId parseStructOrUnionSpecifier();
  TypeId parseEnumSpecifier();
  std::vector<FieldDecl> parseStructDeclarationList();
  std::unique_ptr<Declarator> parseDeclarator(bool Abstract);
  std::unique_ptr<Declarator> parseDirectDeclarator(bool Abstract);
  Declarator::FunctionSuffix parseParameterList();
  /// Applies \p D to \p Base; returns the declared type and sets \p Name.
  TypeId applyDeclarator(const Declarator &D, TypeId Base, Symbol &Name,
                         SourceLoc &NameLoc,
                         const Declarator::FunctionSuffix **OuterFn);
  /// Parses a type-name (for casts and sizeof).
  TypeId parseTypeName();
  /// Handles one init-declarator at file scope or as a local.
  void parseInitDeclarator(const DeclSpecs &Specs, bool AtFileScope,
                           std::vector<VarDecl *> *LocalsOut);
  void parseFunctionDefinition(const DeclSpecs &Specs, const Declarator &D,
                               TypeId FnTy, Symbol Name, SourceLoc NameLoc);
  ExprPtr parseInitializer();
  /// @}

  /// \name Statements.
  /// @{
  StmtPtr parseStatement();
  StmtPtr parseCompound();
  StmtPtr parseDeclStmt();
  bool atLocalDeclStart();
  /// @}

  /// \name Expressions (typed while parsing).
  /// @{
  ExprPtr parseExpr();           ///< comma expression
  ExprPtr parseAssignment();
  ExprPtr parseConditional();
  ExprPtr parseBinary(int MinPrec);
  ExprPtr parseCastExpr();
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();
  /// @}

  /// \name Typing helpers.
  /// @{
  TypeId decayed(TypeId Ty) const;
  TypeId arithmeticResult(TypeId A, TypeId B) const;
  /// Resolves member \p Name in record type \p RecTy; ~0u if absent.
  uint32_t fieldIndex(TypeId RecTy, Symbol Name) const;
  ExprPtr makeIntLit(SourceLoc Loc, uint64_t Value);
  /// @}

  /// Evaluates an integer constant expression; nullopt if not constant.
  std::optional<long> evalConst(const Expr &E) const;
  /// Parses a constant expression and evaluates it (error if non-const).
  long parseConstExpr(const char *Context);

  Lexer Lex;
  Token Cur;
  Token Ahead;
  bool HasAhead = false;

  TranslationUnit &TU;
  TypeTable &Types;
  StringInterner &Strings;
  DiagnosticEngine &Diags;
  LayoutEngine Layout; ///< only for folding sizeof

  std::vector<ScopeLevel> Scopes;
  FunctionDecl *CurFunction = nullptr;
  unsigned ErrorLimitCounter = 0;
};

} // namespace spa

#endif // SPA_CFRONT_PARSER_H
