//===--- Lexer.cpp --------------------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "cfront/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace spa;

const char *spa::tokKindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::Eof: return "end of file";
  case TokKind::Identifier: return "identifier";
  case TokKind::IntLiteral: return "integer literal";
  case TokKind::FloatLiteral: return "float literal";
  case TokKind::CharLiteral: return "character literal";
  case TokKind::StringLiteral: return "string literal";
  case TokKind::KwVoid: return "'void'";
  case TokKind::KwChar: return "'char'";
  case TokKind::KwShort: return "'short'";
  case TokKind::KwInt: return "'int'";
  case TokKind::KwLong: return "'long'";
  case TokKind::KwFloat: return "'float'";
  case TokKind::KwDouble: return "'double'";
  case TokKind::KwSigned: return "'signed'";
  case TokKind::KwUnsigned: return "'unsigned'";
  case TokKind::KwStruct: return "'struct'";
  case TokKind::KwUnion: return "'union'";
  case TokKind::KwEnum: return "'enum'";
  case TokKind::KwTypedef: return "'typedef'";
  case TokKind::KwExtern: return "'extern'";
  case TokKind::KwStatic: return "'static'";
  case TokKind::KwAuto: return "'auto'";
  case TokKind::KwRegister: return "'register'";
  case TokKind::KwConst: return "'const'";
  case TokKind::KwVolatile: return "'volatile'";
  case TokKind::KwIf: return "'if'";
  case TokKind::KwElse: return "'else'";
  case TokKind::KwWhile: return "'while'";
  case TokKind::KwFor: return "'for'";
  case TokKind::KwDo: return "'do'";
  case TokKind::KwSwitch: return "'switch'";
  case TokKind::KwCase: return "'case'";
  case TokKind::KwDefault: return "'default'";
  case TokKind::KwBreak: return "'break'";
  case TokKind::KwContinue: return "'continue'";
  case TokKind::KwReturn: return "'return'";
  case TokKind::KwGoto: return "'goto'";
  case TokKind::KwSizeof: return "'sizeof'";
  case TokKind::LParen: return "'('";
  case TokKind::RParen: return "')'";
  case TokKind::LBrace: return "'{'";
  case TokKind::RBrace: return "'}'";
  case TokKind::LBracket: return "'['";
  case TokKind::RBracket: return "']'";
  case TokKind::Semi: return "';'";
  case TokKind::Comma: return "','";
  case TokKind::Dot: return "'.'";
  case TokKind::Arrow: return "'->'";
  case TokKind::Ellipsis: return "'...'";
  case TokKind::Amp: return "'&'";
  case TokKind::AmpAmp: return "'&&'";
  case TokKind::Pipe: return "'|'";
  case TokKind::PipePipe: return "'||'";
  case TokKind::Caret: return "'^'";
  case TokKind::Tilde: return "'~'";
  case TokKind::Bang: return "'!'";
  case TokKind::Plus: return "'+'";
  case TokKind::PlusPlus: return "'++'";
  case TokKind::Minus: return "'-'";
  case TokKind::MinusMinus: return "'--'";
  case TokKind::Star: return "'*'";
  case TokKind::Slash: return "'/'";
  case TokKind::Percent: return "'%'";
  case TokKind::Less: return "'<'";
  case TokKind::LessEq: return "'<='";
  case TokKind::Greater: return "'>'";
  case TokKind::GreaterEq: return "'>='";
  case TokKind::EqEq: return "'=='";
  case TokKind::BangEq: return "'!='";
  case TokKind::Shl: return "'<<'";
  case TokKind::Shr: return "'>>'";
  case TokKind::Question: return "'?'";
  case TokKind::Colon: return "':'";
  case TokKind::Assign: return "'='";
  case TokKind::PlusAssign: return "'+='";
  case TokKind::MinusAssign: return "'-='";
  case TokKind::StarAssign: return "'*='";
  case TokKind::SlashAssign: return "'/='";
  case TokKind::PercentAssign: return "'%='";
  case TokKind::AmpAssign: return "'&='";
  case TokKind::PipeAssign: return "'|='";
  case TokKind::CaretAssign: return "'^='";
  case TokKind::ShlAssign: return "'<<='";
  case TokKind::ShrAssign: return "'>>='";
  }
  return "token";
}

Lexer::Lexer(std::string_view Source, StringInterner &Strings,
             DiagnosticEngine &Diags)
    : Source(Source), Strings(Strings), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = peek();
  if (C == '\0')
    return C;
  ++Pos;
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipTrivia() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = here();
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          Diags.error(Start, "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
      continue;
    }
    if (C == '#' && Column == 1) {
      // Preprocessor line marker or directive remnant: skip the line.
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    return;
  }
}

Token Lexer::lexIdentifierOrKeyword() {
  static const std::unordered_map<std::string_view, TokKind> Keywords = {
      {"void", TokKind::KwVoid},       {"char", TokKind::KwChar},
      {"short", TokKind::KwShort},     {"int", TokKind::KwInt},
      {"long", TokKind::KwLong},       {"float", TokKind::KwFloat},
      {"double", TokKind::KwDouble},   {"signed", TokKind::KwSigned},
      {"unsigned", TokKind::KwUnsigned}, {"struct", TokKind::KwStruct},
      {"union", TokKind::KwUnion},     {"enum", TokKind::KwEnum},
      {"typedef", TokKind::KwTypedef}, {"extern", TokKind::KwExtern},
      {"static", TokKind::KwStatic},   {"auto", TokKind::KwAuto},
      {"register", TokKind::KwRegister}, {"const", TokKind::KwConst},
      {"volatile", TokKind::KwVolatile}, {"if", TokKind::KwIf},
      {"else", TokKind::KwElse},       {"while", TokKind::KwWhile},
      {"for", TokKind::KwFor},         {"do", TokKind::KwDo},
      {"switch", TokKind::KwSwitch},   {"case", TokKind::KwCase},
      {"default", TokKind::KwDefault}, {"break", TokKind::KwBreak},
      {"continue", TokKind::KwContinue}, {"return", TokKind::KwReturn},
      {"goto", TokKind::KwGoto},       {"sizeof", TokKind::KwSizeof},
  };

  Token Tok;
  Tok.Loc = here();
  size_t Start = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  std::string_view Text = Source.substr(Start, Pos - Start);
  auto It = Keywords.find(Text);
  if (It != Keywords.end()) {
    Tok.Kind = It->second;
    return Tok;
  }
  Tok.Kind = TokKind::Identifier;
  Tok.Ident = Strings.intern(Text);
  return Tok;
}

Token Lexer::lexNumber() {
  Token Tok;
  Tok.Loc = here();
  size_t Start = Pos;
  bool IsFloat = false;

  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    while (std::isxdigit(static_cast<unsigned char>(peek())))
      advance();
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      IsFloat = true;
      advance();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      char Sign = peek(1);
      if (std::isdigit(static_cast<unsigned char>(Sign)) ||
          ((Sign == '+' || Sign == '-') &&
           std::isdigit(static_cast<unsigned char>(peek(2))))) {
        IsFloat = true;
        advance();
        if (peek() == '+' || peek() == '-')
          advance();
        while (std::isdigit(static_cast<unsigned char>(peek())))
          advance();
      }
    }
  }
  std::string Text(Source.substr(Start, Pos - Start));
  // Suffixes (u, l, f combinations).
  while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L' ||
         peek() == 'f' || peek() == 'F') {
    if (peek() == 'f' || peek() == 'F')
      IsFloat = true;
    advance();
  }

  if (IsFloat) {
    Tok.Kind = TokKind::FloatLiteral;
    Tok.FloatValue = std::strtod(Text.c_str(), nullptr);
  } else {
    Tok.Kind = TokKind::IntLiteral;
    Tok.IntValue = std::strtoull(Text.c_str(), nullptr, 0);
  }
  return Tok;
}

int Lexer::decodeEscape() {
  char C = advance();
  if (C != '\\')
    return static_cast<unsigned char>(C);
  char E = advance();
  switch (E) {
  case 'n': return '\n';
  case 't': return '\t';
  case 'r': return '\r';
  case '0': return '\0';
  case 'a': return '\a';
  case 'b': return '\b';
  case 'f': return '\f';
  case 'v': return '\v';
  case '\\': return '\\';
  case '\'': return '\'';
  case '"': return '"';
  case 'x': {
    int Value = 0;
    while (std::isxdigit(static_cast<unsigned char>(peek()))) {
      char H = advance();
      int D = H <= '9' ? H - '0' : (H | 0x20) - 'a' + 10;
      Value = Value * 16 + D;
    }
    return Value & 0xFF;
  }
  default:
    return static_cast<unsigned char>(E);
  }
}

Token Lexer::lexCharLiteral() {
  Token Tok;
  Tok.Loc = here();
  Tok.Kind = TokKind::CharLiteral;
  advance(); // opening quote
  if (peek() == '\'') {
    Diags.error(Tok.Loc, "empty character literal");
    advance();
    return Tok;
  }
  Tok.IntValue = static_cast<uint64_t>(decodeEscape());
  if (!match('\''))
    Diags.error(Tok.Loc, "unterminated character literal");
  return Tok;
}

Token Lexer::lexStringLiteral() {
  Token Tok;
  Tok.Loc = here();
  Tok.Kind = TokKind::StringLiteral;
  advance(); // opening quote
  while (peek() != '"') {
    if (peek() == '\0' || peek() == '\n') {
      Diags.error(Tok.Loc, "unterminated string literal");
      return Tok;
    }
    Tok.StrValue.push_back(static_cast<char>(decodeEscape()));
  }
  advance(); // closing quote
  return Tok;
}

Token Lexer::next() {
  skipTrivia();
  SourceLoc Loc = here();
  char C = peek();

  if (C == '\0') {
    Token Tok;
    Tok.Kind = TokKind::Eof;
    Tok.Loc = Loc;
    return Tok;
  }
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();
  if (C == '\'')
    return lexCharLiteral();
  if (C == '"') {
    // Adjacent string literals concatenate.
    Token Tok = lexStringLiteral();
    for (;;) {
      skipTrivia();
      if (peek() != '"')
        break;
      Token More = lexStringLiteral();
      Tok.StrValue += More.StrValue;
    }
    return Tok;
  }

  Token Tok;
  Tok.Loc = Loc;
  advance();
  auto Set = [&](TokKind Kind) { Tok.Kind = Kind; return Tok; };
  switch (C) {
  case '(': return Set(TokKind::LParen);
  case ')': return Set(TokKind::RParen);
  case '{': return Set(TokKind::LBrace);
  case '}': return Set(TokKind::RBrace);
  case '[': return Set(TokKind::LBracket);
  case ']': return Set(TokKind::RBracket);
  case ';': return Set(TokKind::Semi);
  case ',': return Set(TokKind::Comma);
  case '~': return Set(TokKind::Tilde);
  case '?': return Set(TokKind::Question);
  case ':': return Set(TokKind::Colon);
  case '.':
    if (peek() == '.' && peek(1) == '.') {
      advance();
      advance();
      return Set(TokKind::Ellipsis);
    }
    return Set(TokKind::Dot);
  case '+':
    if (match('+')) return Set(TokKind::PlusPlus);
    if (match('=')) return Set(TokKind::PlusAssign);
    return Set(TokKind::Plus);
  case '-':
    if (match('-')) return Set(TokKind::MinusMinus);
    if (match('=')) return Set(TokKind::MinusAssign);
    if (match('>')) return Set(TokKind::Arrow);
    return Set(TokKind::Minus);
  case '*':
    if (match('=')) return Set(TokKind::StarAssign);
    return Set(TokKind::Star);
  case '/':
    if (match('=')) return Set(TokKind::SlashAssign);
    return Set(TokKind::Slash);
  case '%':
    if (match('=')) return Set(TokKind::PercentAssign);
    return Set(TokKind::Percent);
  case '&':
    if (match('&')) return Set(TokKind::AmpAmp);
    if (match('=')) return Set(TokKind::AmpAssign);
    return Set(TokKind::Amp);
  case '|':
    if (match('|')) return Set(TokKind::PipePipe);
    if (match('=')) return Set(TokKind::PipeAssign);
    return Set(TokKind::Pipe);
  case '^':
    if (match('=')) return Set(TokKind::CaretAssign);
    return Set(TokKind::Caret);
  case '!':
    if (match('=')) return Set(TokKind::BangEq);
    return Set(TokKind::Bang);
  case '=':
    if (match('=')) return Set(TokKind::EqEq);
    return Set(TokKind::Assign);
  case '<':
    if (match('<')) {
      if (match('=')) return Set(TokKind::ShlAssign);
      return Set(TokKind::Shl);
    }
    if (match('=')) return Set(TokKind::LessEq);
    return Set(TokKind::Less);
  case '>':
    if (match('>')) {
      if (match('=')) return Set(TokKind::ShrAssign);
      return Set(TokKind::Shr);
    }
    if (match('=')) return Set(TokKind::GreaterEq);
    return Set(TokKind::Greater);
  default:
    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    return next();
  }
}
