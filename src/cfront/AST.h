//===--- AST.h - Abstract syntax tree --------------------------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typed AST produced by the parser. Nodes use a flattened
/// kind-discriminated representation (one Expr struct, one Stmt struct)
/// rather than a deep class hierarchy: the only consumers are the
/// normalizer and tests, both of which dispatch on the kind anyway.
///
/// Every expression carries the type computed during parsing. Array- and
/// function-typed expressions are *not* decayed in the AST; the normalizer
/// applies decay where C's semantics require it.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CFRONT_AST_H
#define SPA_CFRONT_AST_H

#include "ctypes/TypeTable.h"
#include "support/SourceLoc.h"

#include <memory>
#include <string>
#include <vector>

namespace spa {

struct Expr;
struct Stmt;
struct FunctionDecl;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

/// Expression node kinds.
enum class ExprKind : uint8_t {
  IntLit,     ///< integer or character literal
  FloatLit,
  StringLit,  ///< string literal (a distinct char-array object)
  DeclRef,    ///< reference to a variable or parameter
  FuncRef,    ///< reference to a function by name
  EnumRef,    ///< reference to an enumeration constant
  Unary,
  Binary,
  Assign,     ///< '=' and compound assignments
  Conditional,
  Cast,
  Call,
  Member,     ///< '.' and '->'
  Index,      ///< a[i]
  SizeofType, ///< sizeof(type-name); sizeof expr is folded by the parser
  Comma,
  InitList,   ///< brace-enclosed initializer (only in initializers)
};

/// Unary operators.
enum class UnaryOp : uint8_t {
  AddrOf, Deref, Plus, Minus, Not, BitNot, PreInc, PreDec, PostInc, PostDec,
};

/// Binary operators (assignment is ExprKind::Assign, not here).
enum class BinaryOp : uint8_t {
  Add, Sub, Mul, Div, Rem, Shl, Shr, BitAnd, BitOr, BitXor,
  LogAnd, LogOr, Lt, Gt, Le, Ge, Eq, Ne,
};

struct VarDecl;

/// One expression node; the meaningful members depend on Kind.
struct Expr {
  ExprKind Kind = ExprKind::IntLit;
  SourceLoc Loc;
  /// Type of the expression (arrays/functions not decayed).
  TypeId Ty;

  UnaryOp UOp = UnaryOp::Plus;       ///< Unary
  BinaryOp BOp = BinaryOp::Add;      ///< Binary; also compound-assign op
  bool IsCompoundAssign = false;     ///< Assign: '+=' etc. rather than '='

  ExprPtr Lhs;  ///< Unary/Cast operand, Binary/Assign/Comma lhs, Call callee,
                ///< Member base, Index base, Conditional condition
  ExprPtr Rhs;  ///< Binary/Assign/Comma rhs, Index subscript,
                ///< Conditional then-arm
  ExprPtr Cond; ///< Conditional else-arm

  std::vector<ExprPtr> Args; ///< Call arguments; InitList elements

  VarDecl *Var = nullptr;      ///< DeclRef
  FunctionDecl *Fn = nullptr;  ///< FuncRef
  Symbol Member;               ///< Member: field name
  uint32_t MemberIndex = 0;    ///< Member: index into the record's fields
  bool IsArrow = false;        ///< Member: '->' rather than '.'

  uint64_t IntValue = 0;  ///< IntLit; EnumRef value
  double FloatValue = 0;  ///< FloatLit
  std::string StrValue;   ///< StringLit (decoded)
  TypeId SizeofArg;       ///< SizeofType: the measured type
};

/// Statement node kinds.
enum class StmtKind : uint8_t {
  Compound, ExprStmt, If, While, DoWhile, For, Switch, Case, Default,
  Break, Continue, Return, DeclStmt, Null, Goto, Label,
};

/// One statement node; the meaningful members depend on Kind.
struct Stmt {
  StmtKind Kind = StmtKind::Null;
  SourceLoc Loc;
  /// Where the statement's textual extent ends: the closing brace of a
  /// compound, or the last token of a control construct's body. Set by
  /// the parser for block-structured statements so downstream consumers
  /// (the CFG builder's block source ranges) can report the region a
  /// block covers; invalid for simple statements.
  SourceLoc EndLoc;

  ExprPtr Cond;  ///< If/While/DoWhile/For/Switch condition; Return value;
                 ///< ExprStmt expression
  ExprPtr Init;  ///< For: init expression (exclusive with InitDecl)
  ExprPtr Step;  ///< For: step expression
  StmtPtr Then;  ///< If then; loop/Switch/Case/Default/Label body
  StmtPtr Else;  ///< If else
  StmtPtr InitDecl; ///< For: init declaration (a DeclStmt)

  std::vector<StmtPtr> Body;     ///< Compound: children
  std::vector<VarDecl *> Decls;  ///< DeclStmt: declared locals
  Symbol LabelName;              ///< Goto/Label
  long CaseValue = 0;            ///< Case
};

/// A variable: global, local, or parameter. Owned by the TranslationUnit.
struct VarDecl {
  Symbol Name;
  TypeId Ty;
  SourceLoc Loc;
  bool IsGlobal = false;
  bool IsParam = false;
  bool IsStatic = false;
  bool IsExtern = false;
  ExprPtr Init;                    ///< may be an InitList; often null
  FunctionDecl *Owner = nullptr;   ///< enclosing function; null for globals
};

/// A function declaration or definition. Owned by the TranslationUnit.
struct FunctionDecl {
  Symbol Name;
  TypeId Ty; ///< a Function type
  SourceLoc Loc;
  std::vector<VarDecl *> Params;
  StmtPtr Body; ///< null if declared but not defined
  bool IsVariadic = false;
  bool IsStatic = false;

  bool isDefined() const { return Body != nullptr; }
};

/// Everything parsed from one source buffer.
///
/// Owns all declarations; AST nodes reference them by plain pointer. The
/// TypeTable and StringInterner are owned by the caller so that several
/// translation units (or an analysis over the result) can share them.
struct TranslationUnit {
  explicit TranslationUnit(TypeTable &Types, StringInterner &Strings)
      : Types(Types), Strings(Strings) {}

  TypeTable &Types;
  StringInterner &Strings;

  std::vector<std::unique_ptr<VarDecl>> AllVars; ///< globals + locals + params
  std::vector<std::unique_ptr<FunctionDecl>> Functions;
  std::vector<VarDecl *> Globals; ///< in declaration order

  /// Creates and registers a variable.
  VarDecl *makeVar() {
    AllVars.push_back(std::make_unique<VarDecl>());
    return AllVars.back().get();
  }

  /// Creates and registers a function.
  FunctionDecl *makeFunction() {
    Functions.push_back(std::make_unique<FunctionDecl>());
    return Functions.back().get();
  }

  /// Finds a function by name; null if absent.
  FunctionDecl *findFunction(Symbol Name) const {
    for (const auto &F : Functions)
      if (F->Name == Name)
        return F.get();
    return nullptr;
  }
};

} // namespace spa

#endif // SPA_CFRONT_AST_H
