//===--- Lexer.h - C lexer -------------------------------------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for preprocessed C: identifiers, keywords, numeric /
/// character / string literals, all operators, and both comment styles.
/// Preprocessor directives (`# ...` lines) are skipped so lightly
/// preprocessed sources still lex.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CFRONT_LEXER_H
#define SPA_CFRONT_LEXER_H

#include "cfront/Token.h"
#include "support/Diagnostics.h"

#include <string_view>

namespace spa {

/// Produces a token stream from a source buffer.
class Lexer {
public:
  Lexer(std::string_view Source, StringInterner &Strings,
        DiagnosticEngine &Diags);

  /// Lexes and returns the next token (Eof forever once exhausted).
  Token next();

private:
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char Expected);
  void skipTrivia();
  SourceLoc here() const {
    return {Line, Column, static_cast<uint32_t>(Pos)};
  }

  Token lexIdentifierOrKeyword();
  Token lexNumber();
  Token lexCharLiteral();
  Token lexStringLiteral();
  /// Decodes one (possibly escaped) character of a char/string literal.
  int decodeEscape();

  std::string_view Source;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
  StringInterner &Strings;
  DiagnosticEngine &Diags;
};

} // namespace spa

#endif // SPA_CFRONT_LEXER_H
