//===--- Token.h - Lexical tokens ------------------------------*- C++ -*-===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds and the token record produced by the lexer for the
/// (preprocessed) C subset accepted by the front end.
///
//===----------------------------------------------------------------------===//

#ifndef SPA_CFRONT_TOKEN_H
#define SPA_CFRONT_TOKEN_H

#include "support/SourceLoc.h"
#include "support/StringInterner.h"

#include <cstdint>
#include <string>

namespace spa {

/// Every kind of token the lexer can produce.
enum class TokKind : uint8_t {
  Eof,
  Identifier,
  IntLiteral,
  FloatLiteral,
  CharLiteral,
  StringLiteral,

  // Keywords.
  KwVoid, KwChar, KwShort, KwInt, KwLong, KwFloat, KwDouble,
  KwSigned, KwUnsigned, KwStruct, KwUnion, KwEnum, KwTypedef,
  KwExtern, KwStatic, KwAuto, KwRegister, KwConst, KwVolatile,
  KwIf, KwElse, KwWhile, KwFor, KwDo, KwSwitch, KwCase, KwDefault,
  KwBreak, KwContinue, KwReturn, KwGoto, KwSizeof,

  // Punctuation.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Semi, Comma, Dot, Arrow, Ellipsis,
  Amp, AmpAmp, Pipe, PipePipe, Caret, Tilde, Bang,
  Plus, PlusPlus, Minus, MinusMinus, Star, Slash, Percent,
  Less, LessEq, Greater, GreaterEq, EqEq, BangEq,
  Shl, Shr, Question, Colon,
  Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign,
  AmpAssign, PipeAssign, CaretAssign, ShlAssign, ShrAssign,
};

/// One lexed token. Literal payloads are stored decoded.
struct Token {
  TokKind Kind = TokKind::Eof;
  SourceLoc Loc;
  Symbol Ident;          ///< Identifier: interned spelling
  uint64_t IntValue = 0; ///< IntLiteral / CharLiteral
  double FloatValue = 0; ///< FloatLiteral
  std::string StrValue;  ///< StringLiteral (decoded, without quotes)
};

/// Returns a short printable name for \p Kind (for diagnostics).
const char *tokKindName(TokKind Kind);

} // namespace spa

#endif // SPA_CFRONT_TOKEN_H
