//===--- Parser.cpp -------------------------------------------------------===//
//
// Part of the spa project (see support/IdTypes.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "cfront/Parser.h"

using namespace spa;

Parser::Parser(std::string_view Source, TranslationUnit &TU,
               DiagnosticEngine &Diags, TargetInfo Target)
    : Lex(Source, TU.Strings, Diags), TU(TU), Types(TU.Types),
      Strings(TU.Strings), Diags(Diags), Layout(TU.Types, std::move(Target)) {
  Cur = Lex.next();
  pushScope(); // file scope
}

//===----------------------------------------------------------------------===//
// Token stream
//===----------------------------------------------------------------------===//

const Token &Parser::peekTok() {
  if (!HasAhead) {
    Ahead = Lex.next();
    HasAhead = true;
  }
  return Ahead;
}

void Parser::consume() {
  if (HasAhead) {
    Cur = Ahead;
    HasAhead = false;
    return;
  }
  Cur = Lex.next();
}

bool Parser::accept(TokKind Kind) {
  if (!at(Kind))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokKind Kind, const char *Context) {
  if (accept(Kind))
    return true;
  Diags.error(Cur.Loc, std::string("expected ") + tokKindName(Kind) +
                           " in " + Context + ", found " +
                           tokKindName(Cur.Kind));
  return false;
}

//===----------------------------------------------------------------------===//
// Scopes
//===----------------------------------------------------------------------===//

const Parser::OrdinaryEntry *Parser::lookupOrdinary(Symbol Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->Ordinary.find(Name);
    if (Found != It->Ordinary.end())
      return &Found->second;
  }
  return nullptr;
}

const Parser::TagEntry *Parser::lookupTag(Symbol Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->Tags.find(Name);
    if (Found != It->Tags.end())
      return &Found->second;
  }
  return nullptr;
}

void Parser::declareOrdinary(Symbol Name, OrdinaryEntry Entry) {
  Scopes.back().Ordinary[Name] = std::move(Entry);
}

bool Parser::isTypeName(const Token &T) const {
  if (T.Kind != TokKind::Identifier)
    return false;
  const OrdinaryEntry *Entry = lookupOrdinary(T.Ident);
  return Entry && Entry->Kind == OrdinaryEntry::EK_Typedef;
}

bool Parser::atDeclSpecStart() const {
  switch (Cur.Kind) {
  case TokKind::KwVoid: case TokKind::KwChar: case TokKind::KwShort:
  case TokKind::KwInt: case TokKind::KwLong: case TokKind::KwFloat:
  case TokKind::KwDouble: case TokKind::KwSigned: case TokKind::KwUnsigned:
  case TokKind::KwStruct: case TokKind::KwUnion: case TokKind::KwEnum:
  case TokKind::KwTypedef: case TokKind::KwExtern: case TokKind::KwStatic:
  case TokKind::KwAuto: case TokKind::KwRegister: case TokKind::KwConst:
  case TokKind::KwVolatile:
    return true;
  case TokKind::Identifier:
    return isTypeName(Cur);
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Declaration specifiers
//===----------------------------------------------------------------------===//

Parser::DeclSpecs Parser::parseDeclSpecs() {
  DeclSpecs Specs;
  bool SawVoid = false, SawChar = false, SawFloat = false, SawDouble = false;
  bool SawSigned = false, SawUnsigned = false, SawShort = false,
       SawInt = false;
  int Longs = 0;
  uint8_t Quals = QualNone;
  TypeId TaggedOrTypedef; // struct/union/enum or typedef name

  for (;;) {
    switch (Cur.Kind) {
    case TokKind::KwTypedef: Specs.IsTypedef = true; consume(); continue;
    case TokKind::KwExtern: Specs.IsExtern = true; consume(); continue;
    case TokKind::KwStatic: Specs.IsStatic = true; consume(); continue;
    case TokKind::KwAuto:
    case TokKind::KwRegister: consume(); continue;
    case TokKind::KwConst: Quals |= QualConst; consume(); continue;
    case TokKind::KwVolatile: Quals |= QualVolatile; consume(); continue;
    case TokKind::KwVoid: SawVoid = true; Specs.SawSpecifier = true;
      consume(); continue;
    case TokKind::KwChar: SawChar = true; Specs.SawSpecifier = true;
      consume(); continue;
    case TokKind::KwShort: SawShort = true; Specs.SawSpecifier = true;
      consume(); continue;
    case TokKind::KwInt: SawInt = true; Specs.SawSpecifier = true;
      consume(); continue;
    case TokKind::KwLong: ++Longs; Specs.SawSpecifier = true;
      consume(); continue;
    case TokKind::KwFloat: SawFloat = true; Specs.SawSpecifier = true;
      consume(); continue;
    case TokKind::KwDouble: SawDouble = true; Specs.SawSpecifier = true;
      consume(); continue;
    case TokKind::KwSigned: SawSigned = true; Specs.SawSpecifier = true;
      consume(); continue;
    case TokKind::KwUnsigned: SawUnsigned = true; Specs.SawSpecifier = true;
      consume(); continue;
    case TokKind::KwStruct:
    case TokKind::KwUnion:
      TaggedOrTypedef = parseStructOrUnionSpecifier();
      Specs.SawSpecifier = true;
      continue;
    case TokKind::KwEnum:
      TaggedOrTypedef = parseEnumSpecifier();
      Specs.SawSpecifier = true;
      continue;
    case TokKind::Identifier:
      // A typedef name acts as the type specifier, but only if no other
      // type specifier has been seen (so "unsigned T x;" treats T as the
      // declarator name, matching C).
      if (!Specs.SawSpecifier && isTypeName(Cur)) {
        TaggedOrTypedef = lookupOrdinary(Cur.Ident)->TypedefTy;
        Specs.SawSpecifier = true;
        consume();
        continue;
      }
      break;
    default:
      break;
    }
    break;
  }

  TypeId Base;
  if (TaggedOrTypedef.isValid()) {
    Base = TaggedOrTypedef;
  } else if (SawVoid) {
    Base = Types.voidType();
  } else if (SawChar) {
    Base = SawUnsigned ? Types.ucharType()
                       : (SawSigned ? Types.scharType() : Types.charType());
  } else if (SawFloat) {
    Base = Types.floatType();
  } else if (SawDouble) {
    Base = Longs > 0 ? Types.longdoubleType() : Types.doubleType();
  } else if (SawShort) {
    Base = SawUnsigned ? Types.ushortType() : Types.shortType();
  } else if (Longs >= 2) {
    Base = SawUnsigned ? Types.ulonglongType() : Types.longlongType();
  } else if (Longs == 1) {
    Base = SawUnsigned ? Types.ulongType() : Types.longType();
  } else if (SawUnsigned) {
    Base = Types.uintType();
  } else {
    (void)SawInt; // plain/implicit int
    Base = Types.intType();
  }
  Specs.Base = Types.getQualified(Base, Quals);
  return Specs;
}

TypeId Parser::parseStructOrUnionSpecifier() {
  bool IsUnion = at(TokKind::KwUnion);
  SourceLoc Loc = Cur.Loc;
  consume(); // struct/union

  Symbol Tag;
  if (at(TokKind::Identifier)) {
    Tag = Cur.Ident;
    consume();
  }

  if (!at(TokKind::LBrace)) {
    // Reference (possibly forward) to a tagged record.
    if (!Tag.isValid()) {
      Diags.error(Loc, "anonymous struct/union requires a definition body");
      return Types.intType();
    }
    if (const TagEntry *Entry = lookupTag(Tag)) {
      if (Entry->IsEnum) {
        Diags.error(Loc, "tag redeclared as a different kind");
        return Types.intType();
      }
      return Types.getRecordType(Entry->Rec);
    }
    RecordId Rec = Types.createRecord(IsUnion, Tag);
    Scopes.back().Tags[Tag] = TagEntry{false, Rec, EnumId()};
    return Types.getRecordType(Rec);
  }

  // Definition. A tag already declared *in the current scope* is completed;
  // otherwise a fresh record is created in the current scope.
  RecordId Rec;
  bool Found = false;
  if (Tag.isValid()) {
    auto It = Scopes.back().Tags.find(Tag);
    if (It != Scopes.back().Tags.end() && !It->second.IsEnum) {
      Rec = It->second.Rec;
      Found = true;
      if (Types.record(Rec).IsComplete) {
        Diags.error(Loc, "redefinition of struct/union tag");
        Rec = Types.createRecord(IsUnion, Tag); // recover with a fresh one
      }
    }
  }
  if (!Found)
    Rec = Types.createRecord(IsUnion, Tag);
  if (Tag.isValid())
    Scopes.back().Tags[Tag] = TagEntry{false, Rec, EnumId()};

  consume(); // '{'
  std::vector<FieldDecl> Fields = parseStructDeclarationList();
  expect(TokKind::RBrace, "struct/union definition");
  Types.completeRecord(Rec, std::move(Fields));
  return Types.getRecordType(Rec);
}

std::vector<FieldDecl> Parser::parseStructDeclarationList() {
  std::vector<FieldDecl> Fields;
  while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
    DeclSpecs Specs = parseDeclSpecs();
    if (accept(TokKind::Semi))
      continue; // bare "struct S;" member declaration: no field
    for (;;) {
      if (at(TokKind::Colon)) {
        // Unnamed bit-field: consumes padding only; no field is added.
        consume();
        parseConstExpr("bit-field width");
      } else {
        std::unique_ptr<Declarator> D = parseDeclarator(/*Abstract=*/false);
        Symbol Name;
        SourceLoc NameLoc;
        TypeId Ty = applyDeclarator(*D, Specs.Base, Name, NameLoc, nullptr);
        if (at(TokKind::Colon)) {
          // Bit-field width is parsed and ignored: the field occupies its
          // declared type (documented deviation; see Parser.h).
          consume();
          parseConstExpr("bit-field width");
        }
        if (!Name.isValid())
          Diags.error(Cur.Loc, "expected member name");
        else
          Fields.push_back({Name, Ty});
      }
      if (!accept(TokKind::Comma))
        break;
    }
    expect(TokKind::Semi, "struct member declaration");
  }
  return Fields;
}

TypeId Parser::parseEnumSpecifier() {
  SourceLoc Loc = Cur.Loc;
  consume(); // 'enum'

  Symbol Tag;
  if (at(TokKind::Identifier)) {
    Tag = Cur.Ident;
    consume();
  }

  if (!at(TokKind::LBrace)) {
    if (!Tag.isValid()) {
      Diags.error(Loc, "anonymous enum requires a definition body");
      return Types.intType();
    }
    if (const TagEntry *Entry = lookupTag(Tag)) {
      if (!Entry->IsEnum) {
        Diags.error(Loc, "tag redeclared as a different kind");
        return Types.intType();
      }
      return Types.getEnumType(Entry->En);
    }
    EnumId En = Types.createEnum(Tag);
    Scopes.back().Tags[Tag] = TagEntry{true, RecordId(), En};
    return Types.getEnumType(En);
  }

  EnumId En = Types.createEnum(Tag);
  if (Tag.isValid())
    Scopes.back().Tags[Tag] = TagEntry{true, RecordId(), En};
  TypeId EnumTy = Types.getEnumType(En);

  consume(); // '{'
  long NextValue = 0;
  while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
    if (!at(TokKind::Identifier)) {
      Diags.error(Cur.Loc, "expected enumerator name");
      break;
    }
    Symbol Name = Cur.Ident;
    consume();
    if (accept(TokKind::Assign))
      NextValue = parseConstExpr("enumerator value");
    OrdinaryEntry Entry;
    Entry.Kind = OrdinaryEntry::EK_EnumConst;
    Entry.EnumValue = NextValue;
    Entry.EnumTy = EnumTy;
    declareOrdinary(Name, Entry);
    ++NextValue;
    if (!accept(TokKind::Comma))
      break;
  }
  expect(TokKind::RBrace, "enum definition");
  Types.completeEnum(En);
  return EnumTy;
}

//===----------------------------------------------------------------------===//
// Declarators
//===----------------------------------------------------------------------===//

std::unique_ptr<Parser::Declarator> Parser::parseDeclarator(bool Abstract) {
  auto D = std::make_unique<Declarator>();
  while (at(TokKind::Star)) {
    consume();
    Declarator::PointerLevel Level;
    for (;;) {
      if (accept(TokKind::KwConst)) {
        Level.Quals |= QualConst;
        continue;
      }
      if (accept(TokKind::KwVolatile)) {
        Level.Quals |= QualVolatile;
        continue;
      }
      break;
    }
    D->Pointers.push_back(Level);
  }
  std::unique_ptr<Declarator> Direct = parseDirectDeclarator(Abstract);
  D->Nested = std::move(Direct->Nested);
  D->Name = Direct->Name;
  D->NameLoc = Direct->NameLoc;
  D->Suffixes = std::move(Direct->Suffixes);
  return D;
}

std::unique_ptr<Parser::Declarator>
Parser::parseDirectDeclarator(bool Abstract) {
  auto D = std::make_unique<Declarator>();

  // A declarator name may shadow a typedef name ("typedef int T; unsigned
  // T;" declares a variable T). Only abstract declarators treat a typedef
  // name as "no name here".
  if (at(TokKind::Identifier) && (!Abstract || !isTypeName(Cur))) {
    D->Name = Cur.Ident;
    D->NameLoc = Cur.Loc;
    consume();
  } else if (at(TokKind::LParen)) {
    // Distinguish "(declarator)" from a leading function suffix of an
    // abstract declarator like "int (int)": a parenthesized declarator
    // starts with '*', '(', or a non-typedef identifier.
    const Token &Next = peekTok();
    bool Nested = Next.Kind == TokKind::Star || Next.Kind == TokKind::LParen ||
                  (Next.Kind == TokKind::Identifier && !isTypeName(Next));
    if (Nested) {
      consume(); // '('
      D->Nested = parseDeclarator(Abstract);
      expect(TokKind::RParen, "parenthesized declarator");
    } else if (!Abstract) {
      Diags.error(Cur.Loc, "expected declarator name");
    }
    // Otherwise: abstract declarator with no core; suffix loop below will
    // consume the '(' as a function suffix.
  } else if (!Abstract) {
    Diags.error(Cur.Loc, "expected declarator");
  }

  for (;;) {
    if (at(TokKind::LBracket)) {
      consume();
      Declarator::Suffix Suffix;
      Suffix.IsFunction = false;
      if (!at(TokKind::RBracket)) {
        long N = parseConstExpr("array size");
        Suffix.Array.Count = N <= 0 ? 0 : static_cast<uint64_t>(N);
      }
      expect(TokKind::RBracket, "array declarator");
      D->Suffixes.push_back(std::move(Suffix));
      continue;
    }
    if (at(TokKind::LParen)) {
      consume();
      Declarator::Suffix Suffix;
      Suffix.IsFunction = true;
      Suffix.Function = parseParameterList();
      expect(TokKind::RParen, "parameter list");
      D->Suffixes.push_back(std::move(Suffix));
      continue;
    }
    break;
  }
  return D;
}

Parser::Declarator::FunctionSuffix Parser::parseParameterList() {
  Declarator::FunctionSuffix Fn;
  if (at(TokKind::RParen))
    return Fn; // "()": unprototyped; treated as zero-parameter + variadic
  if (at(TokKind::KwVoid) && peekTok().Kind == TokKind::RParen) {
    consume();
    return Fn;
  }
  for (;;) {
    if (at(TokKind::Ellipsis)) {
      consume();
      Fn.Variadic = true;
      break;
    }
    DeclSpecs Specs = parseDeclSpecs();
    std::unique_ptr<Declarator> D = parseDeclarator(/*Abstract=*/true);
    Symbol Name;
    SourceLoc NameLoc = Cur.Loc;
    TypeId Ty = applyDeclarator(*D, Specs.Base, Name, NameLoc, nullptr);
    // Parameter type adjustments: array -> pointer to element, function ->
    // pointer to function.
    TypeId Unqual = Types.unqualified(Ty);
    if (Types.isArray(Unqual))
      Ty = Types.getPointer(Types.element(Unqual));
    else if (Types.isFunction(Unqual))
      Ty = Types.getPointer(Unqual);
    Fn.ParamTypes.push_back(Ty);
    Fn.ParamNames.push_back(Name);
    Fn.ParamLocs.push_back(NameLoc);
    if (!accept(TokKind::Comma))
      break;
  }
  return Fn;
}

TypeId Parser::applyDeclarator(const Declarator &D, TypeId Base, Symbol &Name,
                               SourceLoc &NameLoc,
                               const Declarator::FunctionSuffix **OuterFn) {
  for (const Declarator::PointerLevel &Level : D.Pointers)
    Base = Types.getQualified(Types.getPointer(Base), Level.Quals);
  for (size_t I = D.Suffixes.size(); I-- > 0;) {
    const Declarator::Suffix &Suffix = D.Suffixes[I];
    if (Suffix.IsFunction) {
      Base = Types.getFunction(Base, Suffix.Function.ParamTypes,
                               Suffix.Function.Variadic);
    } else {
      Base = Types.getArray(Base, Suffix.Array.Count);
    }
  }
  if (D.Nested)
    return applyDeclarator(*D.Nested, Base, Name, NameLoc, OuterFn);
  Name = D.Name;
  NameLoc = D.NameLoc;
  if (OuterFn) {
    *OuterFn = nullptr;
    if (!D.Suffixes.empty() && D.Suffixes.front().IsFunction)
      *OuterFn = &D.Suffixes.front().Function;
  }
  return Base;
}

TypeId Parser::parseTypeName() {
  DeclSpecs Specs = parseDeclSpecs();
  std::unique_ptr<Declarator> D = parseDeclarator(/*Abstract=*/true);
  Symbol Name;
  SourceLoc NameLoc;
  TypeId Ty = applyDeclarator(*D, Specs.Base, Name, NameLoc, nullptr);
  if (Name.isValid())
    Diags.error(NameLoc, "type name may not declare an identifier");
  return Ty;
}

//===----------------------------------------------------------------------===//
// External declarations and initializers
//===----------------------------------------------------------------------===//

bool Parser::parseTranslationUnit() {
  while (!at(TokKind::Eof)) {
    parseExternalDeclaration();
    if (Diags.errorCount() > 200) {
      Diags.error(Cur.Loc, "too many errors; giving up");
      break;
    }
  }
  return !Diags.hasErrors();
}

void Parser::parseExternalDeclaration() {
  DeclSpecs Specs = parseDeclSpecs();
  if (accept(TokKind::Semi))
    return; // bare type declaration: "struct S { ... };"

  bool First = true;
  for (;;) {
    std::unique_ptr<Declarator> D = parseDeclarator(/*Abstract=*/false);
    Symbol Name;
    SourceLoc NameLoc;
    const Declarator::FunctionSuffix *OuterFn = nullptr;
    TypeId Ty = applyDeclarator(*D, Specs.Base, Name, NameLoc, &OuterFn);

    if (First && Types.isFunction(Types.unqualified(Ty)) && OuterFn &&
        at(TokKind::LBrace)) {
      parseFunctionDefinition(Specs, *D, Types.unqualified(Ty), Name, NameLoc);
      return;
    }
    First = false;

    if (!Name.isValid()) {
      Diags.error(NameLoc.isValid() ? NameLoc : Cur.Loc,
                  "declaration declares nothing");
    } else if (Specs.IsTypedef) {
      OrdinaryEntry Entry;
      Entry.Kind = OrdinaryEntry::EK_Typedef;
      Entry.TypedefTy = Ty;
      declareOrdinary(Name, Entry);
    } else if (Types.isFunction(Types.unqualified(Ty))) {
      FunctionDecl *Fn = TU.findFunction(Name);
      if (!Fn) {
        Fn = TU.makeFunction();
        Fn->Name = Name;
        Fn->Ty = Types.unqualified(Ty);
        Fn->Loc = NameLoc;
        Fn->IsVariadic = Types.node(Fn->Ty).Variadic;
        Fn->IsStatic = Specs.IsStatic;
      }
      OrdinaryEntry Entry;
      Entry.Kind = OrdinaryEntry::EK_Func;
      Entry.Fn = Fn;
      declareOrdinary(Name, Entry);
    } else {
      // Global variable; redeclarations (extern + definition) merge.
      VarDecl *Var = nullptr;
      if (const OrdinaryEntry *Prev = lookupOrdinary(Name))
        if (Prev->Kind == OrdinaryEntry::EK_Var && Prev->Var->IsGlobal)
          Var = Prev->Var;
      if (!Var) {
        Var = TU.makeVar();
        Var->Name = Name;
        Var->Loc = NameLoc;
        Var->IsGlobal = true;
        TU.Globals.push_back(Var);
      }
      Var->Ty = Ty;
      Var->IsStatic = Specs.IsStatic;
      Var->IsExtern = Specs.IsExtern && !at(TokKind::Assign);
      OrdinaryEntry Entry;
      Entry.Kind = OrdinaryEntry::EK_Var;
      Entry.Var = Var;
      declareOrdinary(Name, Entry);
      if (accept(TokKind::Assign))
        Var->Init = parseInitializer();
    }

    if (accept(TokKind::Comma))
      continue;
    expect(TokKind::Semi, "declaration");
    return;
  }
}

void Parser::parseFunctionDefinition(const DeclSpecs &Specs,
                                     const Declarator &D, TypeId FnTy,
                                     Symbol Name, SourceLoc NameLoc) {
  (void)D;
  FunctionDecl *Fn = TU.findFunction(Name);
  if (Fn && Fn->isDefined()) {
    Diags.error(NameLoc, "redefinition of function");
    Fn = nullptr;
  }
  if (!Fn) {
    Fn = TU.makeFunction();
    Fn->Name = Name;
  }
  Fn->Ty = FnTy;
  Fn->Loc = NameLoc;
  Fn->IsVariadic = Types.node(FnTy).Variadic;
  Fn->IsStatic = Specs.IsStatic;

  OrdinaryEntry Entry;
  Entry.Kind = OrdinaryEntry::EK_Func;
  Entry.Fn = Fn;
  declareOrdinary(Name, Entry);

  // Locate the defining function suffix to recover parameter names. The
  // declarator was already applied; re-walk it.
  const Declarator *Level = &D;
  while (Level->Nested)
    Level = Level->Nested.get();
  const Declarator::FunctionSuffix *Suffix = nullptr;
  if (!Level->Suffixes.empty() && Level->Suffixes.front().IsFunction)
    Suffix = &Level->Suffixes.front().Function;

  pushScope();
  FunctionDecl *PrevFunction = CurFunction;
  CurFunction = Fn;
  Fn->Params.clear();
  if (Suffix) {
    for (size_t I = 0; I < Suffix->ParamTypes.size(); ++I) {
      VarDecl *Param = TU.makeVar();
      Param->Name = Suffix->ParamNames[I];
      Param->Ty = Suffix->ParamTypes[I];
      Param->Loc = Suffix->ParamLocs[I];
      Param->IsParam = true;
      Param->Owner = Fn;
      Fn->Params.push_back(Param);
      if (Param->Name.isValid()) {
        OrdinaryEntry ParamEntry;
        ParamEntry.Kind = OrdinaryEntry::EK_Var;
        ParamEntry.Var = Param;
        declareOrdinary(Param->Name, ParamEntry);
      }
    }
  }
  Fn->Body = parseCompound();
  CurFunction = PrevFunction;
  popScope();
}

ExprPtr Parser::parseInitializer() {
  if (!at(TokKind::LBrace))
    return parseAssignment();
  SourceLoc Loc = Cur.Loc;
  consume();
  auto List = std::make_unique<Expr>();
  List->Kind = ExprKind::InitList;
  List->Loc = Loc;
  List->Ty = Types.intType(); // the declared object supplies the real type
  while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
    List->Args.push_back(parseInitializer());
    if (!accept(TokKind::Comma))
      break;
  }
  expect(TokKind::RBrace, "initializer list");
  return List;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

bool Parser::atLocalDeclStart() { return atDeclSpecStart(); }

StmtPtr Parser::parseDeclStmt() {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::DeclStmt;
  S->Loc = Cur.Loc;
  DeclSpecs Specs = parseDeclSpecs();
  if (accept(TokKind::Semi))
    return S; // local struct/enum declaration only
  for (;;) {
    parseInitDeclarator(Specs, /*AtFileScope=*/false, &S->Decls);
    if (!accept(TokKind::Comma))
      break;
  }
  expect(TokKind::Semi, "declaration");
  return S;
}

void Parser::parseInitDeclarator(const DeclSpecs &Specs, bool AtFileScope,
                                 std::vector<VarDecl *> *LocalsOut) {
  assert(!AtFileScope && "file scope handled by parseExternalDeclaration");
  (void)AtFileScope;
  std::unique_ptr<Declarator> D = parseDeclarator(/*Abstract=*/false);
  Symbol Name;
  SourceLoc NameLoc;
  TypeId Ty = applyDeclarator(*D, Specs.Base, Name, NameLoc, nullptr);

  if (!Name.isValid()) {
    Diags.error(Cur.Loc, "declaration declares nothing");
    return;
  }
  if (Specs.IsTypedef) {
    OrdinaryEntry Entry;
    Entry.Kind = OrdinaryEntry::EK_Typedef;
    Entry.TypedefTy = Ty;
    declareOrdinary(Name, Entry);
    return;
  }
  if (Types.isFunction(Types.unqualified(Ty))) {
    // Local function declaration.
    FunctionDecl *Fn = TU.findFunction(Name);
    if (!Fn) {
      Fn = TU.makeFunction();
      Fn->Name = Name;
      Fn->Ty = Types.unqualified(Ty);
      Fn->Loc = NameLoc;
      Fn->IsVariadic = Types.node(Fn->Ty).Variadic;
    }
    OrdinaryEntry Entry;
    Entry.Kind = OrdinaryEntry::EK_Func;
    Entry.Fn = Fn;
    declareOrdinary(Name, Entry);
    return;
  }

  VarDecl *Var = TU.makeVar();
  Var->Name = Name;
  Var->Ty = Ty;
  Var->Loc = NameLoc;
  Var->IsStatic = Specs.IsStatic;
  Var->Owner = CurFunction;
  if (LocalsOut)
    LocalsOut->push_back(Var);
  OrdinaryEntry Entry;
  Entry.Kind = OrdinaryEntry::EK_Var;
  Entry.Var = Var;
  declareOrdinary(Name, Entry);
  if (accept(TokKind::Assign))
    Var->Init = parseInitializer();
}

StmtPtr Parser::parseCompound() {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Compound;
  S->Loc = Cur.Loc;
  if (!expect(TokKind::LBrace, "compound statement"))
    return S;
  pushScope();
  while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
    if (atLocalDeclStart())
      S->Body.push_back(parseDeclStmt());
    else
      S->Body.push_back(parseStatement());
  }
  popScope();
  S->EndLoc = Cur.Loc; // the closing brace (or EOF on malformed input)
  expect(TokKind::RBrace, "compound statement");
  return S;
}

/// End of a statement's textual extent, for block source ranges: a
/// compound's closing brace when known, otherwise the statement's start.
static SourceLoc stmtEnd(const Stmt &S) {
  return S.EndLoc.isValid() ? S.EndLoc : S.Loc;
}

StmtPtr Parser::parseStatement() {
  auto S = std::make_unique<Stmt>();
  S->Loc = Cur.Loc;

  switch (Cur.Kind) {
  case TokKind::LBrace:
    return parseCompound();
  case TokKind::Semi:
    consume();
    S->Kind = StmtKind::Null;
    return S;
  case TokKind::KwIf: {
    consume();
    S->Kind = StmtKind::If;
    expect(TokKind::LParen, "if statement");
    S->Cond = parseExpr();
    expect(TokKind::RParen, "if statement");
    S->Then = parseStatement();
    if (accept(TokKind::KwElse))
      S->Else = parseStatement();
    S->EndLoc = stmtEnd(S->Else ? *S->Else : *S->Then);
    return S;
  }
  case TokKind::KwWhile: {
    consume();
    S->Kind = StmtKind::While;
    expect(TokKind::LParen, "while statement");
    S->Cond = parseExpr();
    expect(TokKind::RParen, "while statement");
    S->Then = parseStatement();
    S->EndLoc = stmtEnd(*S->Then);
    return S;
  }
  case TokKind::KwDo: {
    consume();
    S->Kind = StmtKind::DoWhile;
    S->Then = parseStatement();
    expect(TokKind::KwWhile, "do statement");
    expect(TokKind::LParen, "do statement");
    S->Cond = parseExpr();
    expect(TokKind::RParen, "do statement");
    S->EndLoc = Cur.Loc; // the terminating semicolon
    expect(TokKind::Semi, "do statement");
    return S;
  }
  case TokKind::KwFor: {
    consume();
    S->Kind = StmtKind::For;
    expect(TokKind::LParen, "for statement");
    if (!accept(TokKind::Semi)) {
      if (atLocalDeclStart()) {
        S->InitDecl = parseDeclStmt();
      } else {
        S->Init = parseExpr();
        expect(TokKind::Semi, "for statement");
      }
    }
    if (!at(TokKind::Semi))
      S->Cond = parseExpr();
    expect(TokKind::Semi, "for statement");
    if (!at(TokKind::RParen))
      S->Step = parseExpr();
    expect(TokKind::RParen, "for statement");
    S->Then = parseStatement();
    S->EndLoc = stmtEnd(*S->Then);
    return S;
  }
  case TokKind::KwSwitch: {
    consume();
    S->Kind = StmtKind::Switch;
    expect(TokKind::LParen, "switch statement");
    S->Cond = parseExpr();
    expect(TokKind::RParen, "switch statement");
    S->Then = parseStatement();
    S->EndLoc = stmtEnd(*S->Then);
    return S;
  }
  case TokKind::KwCase: {
    consume();
    S->Kind = StmtKind::Case;
    S->CaseValue = parseConstExpr("case label");
    expect(TokKind::Colon, "case label");
    S->Then = parseStatement();
    return S;
  }
  case TokKind::KwDefault: {
    consume();
    S->Kind = StmtKind::Default;
    expect(TokKind::Colon, "default label");
    S->Then = parseStatement();
    return S;
  }
  case TokKind::KwBreak:
    consume();
    S->Kind = StmtKind::Break;
    expect(TokKind::Semi, "break statement");
    return S;
  case TokKind::KwContinue:
    consume();
    S->Kind = StmtKind::Continue;
    expect(TokKind::Semi, "continue statement");
    return S;
  case TokKind::KwReturn: {
    consume();
    S->Kind = StmtKind::Return;
    if (!at(TokKind::Semi))
      S->Cond = parseExpr();
    expect(TokKind::Semi, "return statement");
    return S;
  }
  case TokKind::KwGoto: {
    consume();
    S->Kind = StmtKind::Goto;
    if (at(TokKind::Identifier)) {
      S->LabelName = Cur.Ident;
      consume();
    } else {
      Diags.error(Cur.Loc, "expected label name after 'goto'");
    }
    expect(TokKind::Semi, "goto statement");
    return S;
  }
  case TokKind::Identifier:
    if (peekTok().Kind == TokKind::Colon) {
      S->Kind = StmtKind::Label;
      S->LabelName = Cur.Ident;
      consume();
      consume();
      S->Then = parseStatement();
      return S;
    }
    break;
  default:
    break;
  }

  S->Kind = StmtKind::ExprStmt;
  S->Cond = parseExpr();
  expect(TokKind::Semi, "expression statement");
  return S;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

TypeId Parser::decayed(TypeId Ty) const {
  TypeId Unqual = Types.unqualified(Ty);
  if (Types.isArray(Unqual))
    return Types.getPointer(Types.element(Unqual));
  if (Types.isFunction(Unqual))
    return Types.getPointer(Unqual);
  return Ty;
}

TypeId Parser::arithmeticResult(TypeId A, TypeId B) const {
  TypeId DA = decayed(A), DB = decayed(B);
  if (Types.isPointer(Types.unqualified(DA)))
    return Types.unqualified(DA);
  if (Types.isPointer(Types.unqualified(DB)))
    return Types.unqualified(DB);
  if (Types.isFloating(Types.unqualified(DA)) ||
      Types.isFloating(Types.unqualified(DB)))
    return Types.doubleType();
  return Types.intType();
}

uint32_t Parser::fieldIndex(TypeId RecTy, Symbol Name) const {
  TypeId Unqual = Types.unqualified(RecTy);
  if (!Types.isRecord(Unqual))
    return UINT32_MAX;
  const RecordDecl &Decl = Types.record(Types.node(Unqual).Record);
  for (uint32_t I = 0; I < Decl.Fields.size(); ++I)
    if (Decl.Fields[I].Name == Name)
      return I;
  return UINT32_MAX;
}

ExprPtr Parser::makeIntLit(SourceLoc Loc, uint64_t Value) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::IntLit;
  E->Loc = Loc;
  E->Ty = Types.intType();
  E->IntValue = Value;
  return E;
}

ExprPtr Parser::parseExpr() {
  ExprPtr Lhs = parseAssignment();
  while (at(TokKind::Comma)) {
    SourceLoc Loc = Cur.Loc;
    consume();
    ExprPtr Rhs = parseAssignment();
    auto E = std::make_unique<Expr>();
    E->Kind = ExprKind::Comma;
    E->Loc = Loc;
    E->Ty = Rhs->Ty;
    E->Lhs = std::move(Lhs);
    E->Rhs = std::move(Rhs);
    Lhs = std::move(E);
  }
  return Lhs;
}

ExprPtr Parser::parseAssignment() {
  ExprPtr Lhs = parseConditional();
  BinaryOp CompoundOp = BinaryOp::Add;
  bool IsCompound = true;
  switch (Cur.Kind) {
  case TokKind::Assign: IsCompound = false; break;
  case TokKind::PlusAssign: CompoundOp = BinaryOp::Add; break;
  case TokKind::MinusAssign: CompoundOp = BinaryOp::Sub; break;
  case TokKind::StarAssign: CompoundOp = BinaryOp::Mul; break;
  case TokKind::SlashAssign: CompoundOp = BinaryOp::Div; break;
  case TokKind::PercentAssign: CompoundOp = BinaryOp::Rem; break;
  case TokKind::AmpAssign: CompoundOp = BinaryOp::BitAnd; break;
  case TokKind::PipeAssign: CompoundOp = BinaryOp::BitOr; break;
  case TokKind::CaretAssign: CompoundOp = BinaryOp::BitXor; break;
  case TokKind::ShlAssign: CompoundOp = BinaryOp::Shl; break;
  case TokKind::ShrAssign: CompoundOp = BinaryOp::Shr; break;
  default:
    return Lhs;
  }
  SourceLoc Loc = Cur.Loc;
  consume();
  ExprPtr Rhs = parseAssignment();
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Assign;
  E->Loc = Loc;
  E->Ty = Lhs->Ty;
  E->IsCompoundAssign = IsCompound;
  E->BOp = CompoundOp;
  E->Lhs = std::move(Lhs);
  E->Rhs = std::move(Rhs);
  return E;
}

ExprPtr Parser::parseConditional() {
  ExprPtr Cond = parseBinary(/*MinPrec=*/1);
  if (!at(TokKind::Question))
    return Cond;
  SourceLoc Loc = Cur.Loc;
  consume();
  ExprPtr ThenE = parseExpr();
  expect(TokKind::Colon, "conditional expression");
  ExprPtr ElseE = parseConditional();
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Conditional;
  E->Loc = Loc;
  // Prefer a pointer-typed arm as the result type, mirroring the usual
  // composite-type rule closely enough for analysis purposes.
  TypeId ThenTy = decayed(ThenE->Ty), ElseTy = decayed(ElseE->Ty);
  E->Ty = Types.isPointer(Types.unqualified(ThenTy)) ? ThenTy : ElseTy;
  E->Lhs = std::move(Cond);
  E->Rhs = std::move(ThenE);
  E->Cond = std::move(ElseE);
  return E;
}

namespace {
struct BinOpInfo {
  TokKind Tok;
  BinaryOp Op;
  int Prec;
};
} // namespace

static const BinOpInfo BinOps[] = {
    {TokKind::PipePipe, BinaryOp::LogOr, 1},
    {TokKind::AmpAmp, BinaryOp::LogAnd, 2},
    {TokKind::Pipe, BinaryOp::BitOr, 3},
    {TokKind::Caret, BinaryOp::BitXor, 4},
    {TokKind::Amp, BinaryOp::BitAnd, 5},
    {TokKind::EqEq, BinaryOp::Eq, 6},
    {TokKind::BangEq, BinaryOp::Ne, 6},
    {TokKind::Less, BinaryOp::Lt, 7},
    {TokKind::Greater, BinaryOp::Gt, 7},
    {TokKind::LessEq, BinaryOp::Le, 7},
    {TokKind::GreaterEq, BinaryOp::Ge, 7},
    {TokKind::Shl, BinaryOp::Shl, 8},
    {TokKind::Shr, BinaryOp::Shr, 8},
    {TokKind::Plus, BinaryOp::Add, 9},
    {TokKind::Minus, BinaryOp::Sub, 9},
    {TokKind::Star, BinaryOp::Mul, 10},
    {TokKind::Slash, BinaryOp::Div, 10},
    {TokKind::Percent, BinaryOp::Rem, 10},
};

static const BinOpInfo *findBinOp(TokKind Kind) {
  for (const BinOpInfo &Info : BinOps)
    if (Info.Tok == Kind)
      return &Info;
  return nullptr;
}

ExprPtr Parser::parseBinary(int MinPrec) {
  ExprPtr Lhs = parseCastExpr();
  for (;;) {
    const BinOpInfo *Info = findBinOp(Cur.Kind);
    if (!Info || Info->Prec < MinPrec)
      return Lhs;
    SourceLoc Loc = Cur.Loc;
    consume();
    ExprPtr Rhs = parseBinary(Info->Prec + 1);
    auto E = std::make_unique<Expr>();
    E->Kind = ExprKind::Binary;
    E->Loc = Loc;
    E->BOp = Info->Op;
    switch (Info->Op) {
    case BinaryOp::LogAnd: case BinaryOp::LogOr:
    case BinaryOp::Lt: case BinaryOp::Gt: case BinaryOp::Le:
    case BinaryOp::Ge: case BinaryOp::Eq: case BinaryOp::Ne:
      E->Ty = Types.intType();
      break;
    case BinaryOp::Sub: {
      // pointer - pointer is an integer.
      TypeId LT = Types.unqualified(decayed(Lhs->Ty));
      TypeId RT = Types.unqualified(decayed(Rhs->Ty));
      if (Types.isPointer(LT) && Types.isPointer(RT))
        E->Ty = Types.intType();
      else
        E->Ty = arithmeticResult(Lhs->Ty, Rhs->Ty);
      break;
    }
    default:
      E->Ty = arithmeticResult(Lhs->Ty, Rhs->Ty);
      break;
    }
    E->Lhs = std::move(Lhs);
    E->Rhs = std::move(Rhs);
    Lhs = std::move(E);
  }
}

ExprPtr Parser::parseCastExpr() {
  if (at(TokKind::LParen)) {
    const Token &Next = peekTok();
    bool IsType = false;
    switch (Next.Kind) {
    case TokKind::KwVoid: case TokKind::KwChar: case TokKind::KwShort:
    case TokKind::KwInt: case TokKind::KwLong: case TokKind::KwFloat:
    case TokKind::KwDouble: case TokKind::KwSigned: case TokKind::KwUnsigned:
    case TokKind::KwStruct: case TokKind::KwUnion: case TokKind::KwEnum:
    case TokKind::KwConst: case TokKind::KwVolatile:
      IsType = true;
      break;
    case TokKind::Identifier:
      IsType = isTypeName(Next);
      break;
    default:
      break;
    }
    if (IsType) {
      SourceLoc Loc = Cur.Loc;
      consume(); // '('
      TypeId Ty = parseTypeName();
      expect(TokKind::RParen, "cast expression");
      ExprPtr Operand = parseCastExpr();
      auto E = std::make_unique<Expr>();
      E->Kind = ExprKind::Cast;
      E->Loc = Loc;
      E->Ty = Ty;
      E->Lhs = std::move(Operand);
      return E;
    }
  }
  return parseUnary();
}

ExprPtr Parser::parseUnary() {
  SourceLoc Loc = Cur.Loc;
  auto MakeUnary = [&](UnaryOp Op, ExprPtr Operand, TypeId Ty) {
    auto E = std::make_unique<Expr>();
    E->Kind = ExprKind::Unary;
    E->Loc = Loc;
    E->UOp = Op;
    E->Ty = Ty;
    E->Lhs = std::move(Operand);
    return E;
  };

  switch (Cur.Kind) {
  case TokKind::Amp: {
    consume();
    ExprPtr Operand = parseCastExpr();
    TypeId Ty = Types.getPointer(Operand->Ty);
    return MakeUnary(UnaryOp::AddrOf, std::move(Operand), Ty);
  }
  case TokKind::Star: {
    consume();
    ExprPtr Operand = parseCastExpr();
    TypeId OpTy = Types.unqualified(decayed(Operand->Ty));
    TypeId Ty;
    if (Types.isPointer(OpTy)) {
      Ty = Types.pointee(OpTy);
      // Dereferencing a pointer-to-function yields the function itself.
    } else {
      Diags.error(Loc, "dereference of non-pointer");
      Ty = Types.intType();
    }
    return MakeUnary(UnaryOp::Deref, std::move(Operand), Ty);
  }
  case TokKind::Plus: {
    consume();
    ExprPtr Operand = parseCastExpr();
    TypeId Ty = decayed(Operand->Ty);
    return MakeUnary(UnaryOp::Plus, std::move(Operand), Ty);
  }
  case TokKind::Minus: {
    consume();
    ExprPtr Operand = parseCastExpr();
    TypeId Ty = arithmeticResult(Operand->Ty, Operand->Ty);
    return MakeUnary(UnaryOp::Minus, std::move(Operand), Ty);
  }
  case TokKind::Bang: {
    consume();
    ExprPtr Operand = parseCastExpr();
    return MakeUnary(UnaryOp::Not, std::move(Operand), Types.intType());
  }
  case TokKind::Tilde: {
    consume();
    ExprPtr Operand = parseCastExpr();
    return MakeUnary(UnaryOp::BitNot, std::move(Operand), Types.intType());
  }
  case TokKind::PlusPlus: {
    consume();
    ExprPtr Operand = parseUnary();
    TypeId Ty = Operand->Ty;
    return MakeUnary(UnaryOp::PreInc, std::move(Operand), Ty);
  }
  case TokKind::MinusMinus: {
    consume();
    ExprPtr Operand = parseUnary();
    TypeId Ty = Operand->Ty;
    return MakeUnary(UnaryOp::PreDec, std::move(Operand), Ty);
  }
  case TokKind::KwSizeof: {
    consume();
    TypeId Measured;
    if (at(TokKind::LParen)) {
      const Token &Next = peekTok();
      bool IsType = false;
      switch (Next.Kind) {
      case TokKind::KwVoid: case TokKind::KwChar: case TokKind::KwShort:
      case TokKind::KwInt: case TokKind::KwLong: case TokKind::KwFloat:
      case TokKind::KwDouble: case TokKind::KwSigned:
      case TokKind::KwUnsigned: case TokKind::KwStruct: case TokKind::KwUnion:
      case TokKind::KwEnum: case TokKind::KwConst: case TokKind::KwVolatile:
        IsType = true;
        break;
      case TokKind::Identifier:
        IsType = isTypeName(Next);
        break;
      default:
        break;
      }
      if (IsType) {
        consume();
        Measured = parseTypeName();
        expect(TokKind::RParen, "sizeof");
      }
    }
    if (!Measured.isValid()) {
      ExprPtr Operand = parseUnary();
      Measured = Operand->Ty;
    }
    // Folded to a constant under the parse-time ABI; the portable analysis
    // instances never consult object sizes, so this is benign for them.
    return makeIntLit(Loc, Layout.sizeOf(Types.unqualified(Measured)));
  }
  default:
    return parsePostfix();
  }
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  for (;;) {
    SourceLoc Loc = Cur.Loc;
    switch (Cur.Kind) {
    case TokKind::LParen: {
      consume();
      auto Call = std::make_unique<Expr>();
      Call->Kind = ExprKind::Call;
      Call->Loc = Loc;
      TypeId CalleeTy = Types.unqualified(E->Ty);
      if (Types.isPointer(CalleeTy))
        CalleeTy = Types.unqualified(Types.pointee(CalleeTy));
      if (Types.isFunction(CalleeTy))
        Call->Ty = Types.node(CalleeTy).Inner;
      else
        Call->Ty = Types.intType();
      Call->Lhs = std::move(E);
      while (!at(TokKind::RParen) && !at(TokKind::Eof)) {
        Call->Args.push_back(parseAssignment());
        if (!accept(TokKind::Comma))
          break;
      }
      expect(TokKind::RParen, "call expression");
      E = std::move(Call);
      continue;
    }
    case TokKind::LBracket: {
      consume();
      auto Index = std::make_unique<Expr>();
      Index->Kind = ExprKind::Index;
      Index->Loc = Loc;
      TypeId BaseTy = Types.unqualified(E->Ty);
      if (Types.isArray(BaseTy))
        Index->Ty = Types.element(BaseTy);
      else if (Types.isPointer(BaseTy))
        Index->Ty = Types.pointee(BaseTy);
      else {
        Diags.error(Loc, "subscript of non-array, non-pointer");
        Index->Ty = Types.intType();
      }
      Index->Lhs = std::move(E);
      Index->Rhs = parseExpr();
      expect(TokKind::RBracket, "index expression");
      E = std::move(Index);
      continue;
    }
    case TokKind::Dot:
    case TokKind::Arrow: {
      bool IsArrow = at(TokKind::Arrow);
      consume();
      if (!at(TokKind::Identifier)) {
        Diags.error(Cur.Loc, "expected member name");
        return E;
      }
      Symbol Member = Cur.Ident;
      consume();
      TypeId RecTy = Types.unqualified(E->Ty);
      if (IsArrow) {
        TypeId PtrTy = Types.unqualified(decayed(E->Ty));
        if (Types.isPointer(PtrTy))
          RecTy = Types.unqualified(Types.pointee(PtrTy));
        else
          Diags.error(Loc, "'->' applied to non-pointer");
      }
      auto M = std::make_unique<Expr>();
      M->Kind = ExprKind::Member;
      M->Loc = Loc;
      M->IsArrow = IsArrow;
      M->Member = Member;
      uint32_t Index = fieldIndex(RecTy, Member);
      if (Index == UINT32_MAX) {
        Diags.error(Loc, "no member named '" +
                             std::string(Strings.text(Member)) + "' in " +
                             Types.toString(RecTy, Strings));
        M->Ty = Types.intType();
        M->MemberIndex = 0;
      } else {
        M->MemberIndex = Index;
        M->Ty = Types.record(Types.node(RecTy).Record).Fields[Index].Ty;
      }
      M->Lhs = std::move(E);
      E = std::move(M);
      continue;
    }
    case TokKind::PlusPlus:
    case TokKind::MinusMinus: {
      bool IsInc = at(TokKind::PlusPlus);
      consume();
      auto U = std::make_unique<Expr>();
      U->Kind = ExprKind::Unary;
      U->Loc = Loc;
      U->UOp = IsInc ? UnaryOp::PostInc : UnaryOp::PostDec;
      U->Ty = E->Ty;
      U->Lhs = std::move(E);
      E = std::move(U);
      continue;
    }
    default:
      return E;
    }
  }
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = Cur.Loc;
  switch (Cur.Kind) {
  case TokKind::IntLiteral: {
    ExprPtr E = makeIntLit(Loc, Cur.IntValue);
    consume();
    return E;
  }
  case TokKind::CharLiteral: {
    ExprPtr E = makeIntLit(Loc, Cur.IntValue);
    consume();
    return E;
  }
  case TokKind::FloatLiteral: {
    auto E = std::make_unique<Expr>();
    E->Kind = ExprKind::FloatLit;
    E->Loc = Loc;
    E->Ty = Types.doubleType();
    E->FloatValue = Cur.FloatValue;
    consume();
    return E;
  }
  case TokKind::StringLiteral: {
    auto E = std::make_unique<Expr>();
    E->Kind = ExprKind::StringLit;
    E->Loc = Loc;
    E->StrValue = Cur.StrValue;
    E->Ty = Types.getArray(Types.charType(), E->StrValue.size() + 1);
    consume();
    return E;
  }
  case TokKind::LParen: {
    consume();
    ExprPtr E = parseExpr();
    expect(TokKind::RParen, "parenthesized expression");
    return E;
  }
  case TokKind::Identifier: {
    Symbol Name = Cur.Ident;
    consume();
    if (const OrdinaryEntry *Entry = lookupOrdinary(Name)) {
      switch (Entry->Kind) {
      case OrdinaryEntry::EK_Var: {
        auto E = std::make_unique<Expr>();
        E->Kind = ExprKind::DeclRef;
        E->Loc = Loc;
        E->Ty = Entry->Var->Ty;
        E->Var = Entry->Var;
        return E;
      }
      case OrdinaryEntry::EK_Func: {
        auto E = std::make_unique<Expr>();
        E->Kind = ExprKind::FuncRef;
        E->Loc = Loc;
        E->Ty = Entry->Fn->Ty;
        E->Fn = Entry->Fn;
        return E;
      }
      case OrdinaryEntry::EK_EnumConst: {
        auto E = std::make_unique<Expr>();
        E->Kind = ExprKind::EnumRef;
        E->Loc = Loc;
        E->Ty = Entry->EnumTy;
        E->IntValue = static_cast<uint64_t>(Entry->EnumValue);
        return E;
      }
      case OrdinaryEntry::EK_Typedef:
        Diags.error(Loc, "unexpected type name in expression");
        return makeIntLit(Loc, 0);
      }
    }
    if (at(TokKind::LParen)) {
      // Implicit declaration of a called function: "int name();" variadic.
      FunctionDecl *Fn = TU.findFunction(Name);
      if (!Fn) {
        Fn = TU.makeFunction();
        Fn->Name = Name;
        Fn->Ty = Types.getFunction(Types.intType(), {}, /*Variadic=*/true);
        Fn->Loc = Loc;
        Fn->IsVariadic = true;
      }
      OrdinaryEntry Entry;
      Entry.Kind = OrdinaryEntry::EK_Func;
      Entry.Fn = Fn;
      Scopes.front().Ordinary[Name] = Entry;
      auto E = std::make_unique<Expr>();
      E->Kind = ExprKind::FuncRef;
      E->Loc = Loc;
      E->Ty = Fn->Ty;
      E->Fn = Fn;
      return E;
    }
    Diags.error(Loc,
                "use of undeclared identifier '" +
                    std::string(Strings.text(Name)) + "'");
    return makeIntLit(Loc, 0);
  }
  default:
    Diags.error(Loc, std::string("expected expression, found ") +
                         tokKindName(Cur.Kind));
    consume(); // make progress
    return makeIntLit(Loc, 0);
  }
}

//===----------------------------------------------------------------------===//
// Constant expressions
//===----------------------------------------------------------------------===//

std::optional<long> Parser::evalConst(const Expr &E) const {
  switch (E.Kind) {
  case ExprKind::IntLit:
  case ExprKind::EnumRef:
    return static_cast<long>(E.IntValue);
  case ExprKind::Unary: {
    auto V = evalConst(*E.Lhs);
    if (!V)
      return std::nullopt;
    switch (E.UOp) {
    case UnaryOp::Plus: return *V;
    case UnaryOp::Minus: return -*V;
    case UnaryOp::Not: return *V == 0 ? 1 : 0;
    case UnaryOp::BitNot: return ~*V;
    default: return std::nullopt;
    }
  }
  case ExprKind::Binary: {
    auto A = evalConst(*E.Lhs);
    auto B = evalConst(*E.Rhs);
    if (!A || !B)
      return std::nullopt;
    switch (E.BOp) {
    case BinaryOp::Add: return *A + *B;
    case BinaryOp::Sub: return *A - *B;
    case BinaryOp::Mul: return *A * *B;
    case BinaryOp::Div: return *B == 0 ? std::optional<long>() : *A / *B;
    case BinaryOp::Rem: return *B == 0 ? std::optional<long>() : *A % *B;
    case BinaryOp::Shl: return *A << *B;
    case BinaryOp::Shr: return *A >> *B;
    case BinaryOp::BitAnd: return *A & *B;
    case BinaryOp::BitOr: return *A | *B;
    case BinaryOp::BitXor: return *A ^ *B;
    case BinaryOp::LogAnd: return (*A && *B) ? 1 : 0;
    case BinaryOp::LogOr: return (*A || *B) ? 1 : 0;
    case BinaryOp::Lt: return *A < *B ? 1 : 0;
    case BinaryOp::Gt: return *A > *B ? 1 : 0;
    case BinaryOp::Le: return *A <= *B ? 1 : 0;
    case BinaryOp::Ge: return *A >= *B ? 1 : 0;
    case BinaryOp::Eq: return *A == *B ? 1 : 0;
    case BinaryOp::Ne: return *A != *B ? 1 : 0;
    }
    return std::nullopt;
  }
  case ExprKind::Conditional: {
    auto C = evalConst(*E.Lhs);
    if (!C)
      return std::nullopt;
    return *C ? evalConst(*E.Rhs) : evalConst(*E.Cond);
  }
  case ExprKind::Cast:
    if (Types.isInteger(Types.unqualified(E.Ty)) ||
        Types.kind(Types.unqualified(E.Ty)) == TypeKind::Enum)
      return evalConst(*E.Lhs);
    return std::nullopt;
  default:
    return std::nullopt;
  }
}

long Parser::parseConstExpr(const char *Context) {
  ExprPtr E = parseConditional();
  std::optional<long> V = evalConst(*E);
  if (!V) {
    Diags.error(E->Loc, std::string("expected integer constant in ") +
                            Context);
    return 0;
  }
  return *V;
}
